"""Thread-parallel sweeps: the zero-copy sibling of the sharded engine.

:class:`ThreadedEngine` (registry name ``csr-mt``) fans the two failure
sweeps - ``failure_sweep`` and ``weighted_failure_sweep`` - out over a
thread pool inside the calling process.  The numpy kernels release the
GIL for their array passes - and the compiled ``csr-c`` base (the
default when registered) holds it released for *whole* unweighted and
weighted kernel calls - so shard windows genuinely overlap on
multi-core hosts, and because every thread shares the parent's address
space there is *nothing to transport at all*: no pickling, no
shared-memory segments, no worker-side attach or façade build.  The
fixed cost of a window is one submit.

The engine wraps the csr engine (its kernels are what make threads pay;
any base can be forced for testing) and stays **bit-identical** to it
the same way the sharded engine does: windows are contiguous slices of
the request, each window is computed by the base engine's own
primitives - the one shared :class:`~repro.engine.kernels.FailureSweep`
handle for the unweighted sweep, the one shared
:class:`~repro.engine.csr_engine.PreparedWeightedSweep` setup for the
weighted one (both are safe to drive concurrently: all shared arrays
are read-only, every scratch buffer is per-call) - and results stream
back in request order.

Compared to the sharded engine: no process pool to warm, no per-worker
attach, and per-sweep setup is computed exactly once in-process, so the
break-even request size is smaller (``min_batch`` defaults to 8); but
all windows share one Python interpreter, so pure-Python portions
(result assembly, the reference fallbacks) serialize on the GIL where
the sharded engine's processes would not.  Selection follows the usual
chain (``engine=csr-mt``, ``$REPRO_ENGINE``, the verification oracle's
large-graph auto-upgrade when shared memory is unavailable).  Thread
count comes from ``$REPRO_THREADS``, falling back to the worker default
(``$REPRO_MAX_WORKERS`` / cores - 1); sweeps inside a harness pool
worker degrade to the base engine in-process, like the sharded engine.
"""

from __future__ import annotations

import atexit
from typing import Callable, Iterator, List, Optional, Sequence, Set, Tuple

from repro._types import EdgeId, Vertex
from repro.engine.base import ReplacementSweepItem, SweepHandle, TraversalEngine
from repro.engine.sharded import SHARD_MIN_BATCH_ENV_VAR, _shard_bounds
from repro.graphs.graph import Graph

__all__ = ["ThreadedEngine", "THREADS_ENV_VAR", "shutdown_thread_pool"]

#: Overrides the thread count (positive int); unset = the worker default.
THREADS_ENV_VAR = "REPRO_THREADS"

#: A window's fixed cost is one executor submit - far below even the
#: shm transport's attach-and-memoize - so the finest batch default of
#: the three sweep runners.
_DEFAULT_MIN_BATCH_MT = 8

#: The persistent thread pool: (pool, size), grown by recreation like
#: the sharded engine's process pools.  Threads are cheap, but verify
#: streams two sweeps in lockstep through this pool - a shared
#: persistent pool keeps their combined footprint at one budget.
_POOL: Optional[Tuple[object, int]] = None


def _get_thread_pool(threads: int):
    from concurrent.futures import ThreadPoolExecutor

    global _POOL
    if _POOL is not None:
        pool, size = _POOL
        if size >= threads:
            return pool
        pool.shutdown(wait=False)
        _POOL = None
    pool = ThreadPoolExecutor(
        max_workers=threads, thread_name_prefix="repro-sweep"
    )
    _POOL = (pool, threads)
    return pool


def shutdown_thread_pool() -> None:
    """Shut down the persistent sweep thread pool (no waiting)."""
    global _POOL
    if _POOL is not None:
        _POOL[0].shutdown(wait=False)
        _POOL = None


atexit.register(shutdown_thread_pool)


class ThreadedEngine(TraversalEngine):
    """Wrap the csr engine, windowing ``failure_sweep`` across threads."""

    name = "csr-mt"
    parallel_sweeps = True
    transport = "none needed (threads share the caller's memory)"
    plane_segments = "none (zero-copy by construction)"

    def __init__(
        self,
        base: Optional[str] = None,
        *,
        max_threads: Optional[int] = None,
        min_batch: Optional[int] = None,
    ) -> None:
        self._base_name = base
        self._max_threads = max_threads
        self._min_batch = min_batch

    # -- delegation ----------------------------------------------------
    def base_engine(self) -> TraversalEngine:
        """The wrapped single-process engine (best kernels unless forced).

        Prefers the compiled ``csr-c`` engine when registered: its C
        kernels release the GIL for the *entire* sweep call rather than
        per numpy array pass, so thread windows overlap even better and
        the compiled speedup multiplies the thread speedup for free.
        Falls back to ``csr`` (and any base can be forced for testing).
        """
        from repro.engine.registry import available_engines, get_engine

        if self._base_name is not None:
            return get_engine(self._base_name)
        return get_engine(
            "csr-c" if "csr-c" in available_engines() else "csr"
        )

    def distances(self, graph, source, **kwargs):
        return self.base_engine().distances(graph, source, **kwargs)

    def parents(self, graph, source, **kwargs):
        return self.base_engine().parents(graph, source, **kwargs)

    def distances_subset(self, graph, source, targets, **kwargs):
        return self.base_engine().distances_subset(graph, source, targets, **kwargs)

    def sweep(self, graph, source, *, allowed_edges=None) -> SweepHandle:
        return self.base_engine().sweep(graph, source, allowed_edges=allowed_edges)

    def shortest_paths(self, graph, weights, source, **kwargs):
        return self.base_engine().shortest_paths(graph, weights, source, **kwargs)

    def seeded_shortest_paths(self, graph, weights, seeds, **kwargs):
        return self.base_engine().seeded_shortest_paths(graph, weights, seeds, **kwargs)

    def batched_shortest_paths(
        self, graph, weights, sources, banned_vertices_per_source=None, **kwargs
    ):
        return self.base_engine().batched_shortest_paths(
            graph, weights, sources, banned_vertices_per_source, **kwargs
        )

    def batched_seeded_shortest_paths(self, graph, weights, batches, **kwargs):
        return self.base_engine().batched_seeded_shortest_paths(
            graph, weights, batches, **kwargs
        )

    @property
    def weighted_backend(self) -> str:
        return f"delegates to {self.base_engine().name!r}"

    @property
    def replacement_backend(self) -> str:
        return f"thread-windowed weighted sweep over {self.base_engine().name!r}"

    @property
    def detour_backend(self) -> str:
        return f"delegates to {self.base_engine().name!r}"

    @property
    def threads(self) -> str:
        """Resolved thread budget (``repro engines`` prints it)."""
        return f"{self._thread_budget()} threads (${THREADS_ENV_VAR})"

    @property
    def compiler(self) -> str:
        return self.base_engine().compiler

    # -- planning ------------------------------------------------------
    def _thread_budget(self) -> int:
        if self._max_threads is not None:
            return max(1, self._max_threads)
        from repro.harness.parallel import default_worker_count
        from repro.util.validation import env_int

        return max(1, env_int(THREADS_ENV_VAR, default_worker_count()))

    def _effective_min_batch(self) -> int:
        if self._min_batch is not None:
            return self._min_batch
        from repro.util.validation import env_int

        return env_int(SHARD_MIN_BATCH_ENV_VAR, _DEFAULT_MIN_BATCH_MT)

    def _plan(self, num_eids: int, min_batch: Optional[int] = None) -> int:
        """Number of threads to use (1 = run on the base engine inline)."""
        from repro.harness.parallel import in_worker_process

        if in_worker_process():
            return 1  # harness pool workers already fill the machine
        if min_batch is None:
            min_batch = self._effective_min_batch()
        return max(1, min(self._thread_budget(), num_eids // max(1, min_batch)))

    def halved(self) -> "ThreadedEngine":
        """A copy capped at half this engine's thread budget (the
        verification oracle consumes two sweeps in lockstep; both sides
        share the one persistent pool, so half each keeps the in-flight
        window total at one budget)."""
        return ThreadedEngine(
            base=self._base_name,
            max_threads=max(1, self._thread_budget() // 2),
            min_batch=self._min_batch,
        )

    # -- the windowed primitives ---------------------------------------
    def failure_sweep(
        self,
        graph: Graph,
        source: Vertex,
        eids: Sequence[EdgeId],
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> Iterator[Sequence[int]]:
        """Hop-distance vectors per failed edge, windowed over threads.

        One shared sweep handle (one base traversal); contiguous windows
        of ``eids`` run ``handle.failed`` concurrently - safe because
        ``failed`` only reads shared state and writes fresh arrays - and
        vectors stream back in request order, bit-identical to the base
        engine's own sweep.
        """
        base = self.base_engine()
        eid_list = list(eids)
        threads = self._plan(len(eid_list))
        if threads <= 1:
            yield from base.failure_sweep(
                graph, source, eid_list, allowed_edges=allowed_edges
            )
            return
        handle = base.sweep(graph, source, allowed_edges=allowed_edges)

        def window(lo: int, hi: int) -> List[Sequence[int]]:
            return [handle.failed(eid) for eid in eid_list[lo:hi]]

        yield from self._stream_windows(len(eid_list), threads, window)

    def weighted_failure_sweep(
        self,
        graph: Graph,
        weights,
        tree,
        eids: Optional[Sequence[EdgeId]] = None,
    ) -> Iterator[ReplacementSweepItem]:
        """Replacement data per failed tree edge, windowed over threads.

        The base engine's prepared sweep setup is built once and shared;
        windows run ``prepared.items`` slices concurrently (per-call
        scratch buffers, read-only shared arrays).  Requests the plan
        cannot represent (the exact scheme) run on the base engine
        inline - threading the GIL-bound reference loops would add
        nothing.  Items stream back in request order, bit-identical to
        the base engine's own sweep.
        """
        base = self.base_engine()
        edge_list = list(eids) if eids is not None else tree.tree_edges()
        threads = self._plan(len(edge_list))
        prepare = getattr(base, "prepared_weighted_sweep", None)
        prepared = (
            prepare(graph, weights, tree, edge_list)
            if threads > 1 and prepare is not None
            else None
        )
        if prepared is None:
            yield from base.weighted_failure_sweep(
                graph, weights, tree, eids=edge_list
            )
            return

        def window(lo: int, hi: int) -> List[ReplacementSweepItem]:
            return list(prepared.items(lo, hi))

        yield from self._stream_windows(len(edge_list), threads, window)

    def _stream_windows(
        self, num_items: int, threads: int, window: Callable
    ) -> Iterator:
        """Submit ``(lo, hi)`` windows to the thread pool, stream results.

        Results come back in request order; the in-flight window count
        is capped at ``threads`` (the pool is shared and may be larger),
        so parent memory stays O(window results) and an explicit
        ``max_threads`` cap is honored even on a wider pool.  An
        abandoned generator cancels its pending windows; running ones
        finish in the background on the persistent pool.
        """
        bounds = _shard_bounds(num_items, threads, self._effective_min_batch())
        pool = _get_thread_pool(threads)
        pending: List = []
        next_window = 0
        try:
            while next_window < len(bounds) or pending:
                while next_window < len(bounds) and len(pending) < threads:
                    lo, hi = bounds[next_window]
                    pending.append(pool.submit(window, lo, hi))
                    next_window += 1
                future = pending.pop(0)  # request order
                for item in future.result():
                    yield item
        finally:
            for future in pending:
                future.cancel()

"""Frontier-based numpy BFS kernels over a :class:`CSRAdjacency` view.

All kernels operate on flat int64 arrays and per-edge / per-vertex
boolean masks; none of them touch Python adjacency lists.  Tie-breaking
(which vertex becomes a parent, discovery order of a level) is inherited
from the CSR layout, which preserves the graph's adjacency-list order -
so results are bit-identical to the pure-Python reference loops.

The expensive primitive is :class:`FailureSweep`: hop distances under
every single-edge failure of a sweep, computed by reusing one base BFS
tree.  Failing a non-tree edge cannot change any hop distance (the tree
certifies every distance without it), and failing tree edge ``e`` with
deeper endpoint ``c`` can only change distances *inside the subtree
under* ``c``; those are recomputed by a small multi-level-seeded BFS
restricted to the subtree, seeded from its surviving crossing edges.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.engine.base import UNREACHABLE, SweepHandle
from repro.engine.csr import CSRAdjacency

__all__ = [
    "expand_frontier",
    "bfs_levels",
    "bfs_levels_ordered",
    "FailureSweep",
]

_INF = np.iinfo(np.int64).max


def expand_frontier(
    csr: CSRAdjacency, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The neighbor stream of ``frontier`` in adjacency order.

    Returns ``(sources, neighbors, edge_ids)``: three aligned arrays, one
    entry per incident half-edge, with ``sources`` repeating each
    frontier vertex once per neighbor.
    """
    starts = csr.indptr[frontier]
    counts = csr.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    cum = np.cumsum(counts)
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - (cum - counts), counts)
    return np.repeat(frontier, counts), csr.indices[flat], csr.edge_ids[flat]


def bfs_levels(
    csr: CSRAdjacency,
    source: int,
    *,
    edge_ok: Optional[np.ndarray] = None,
    vertex_ok: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Masked hop distances from ``source`` (``UNREACHABLE`` = -1)."""
    dist = np.full(csr.num_vertices, UNREACHABLE, dtype=np.int64)
    if vertex_ok is not None and not vertex_ok[source]:
        return dist
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        _, nbrs, eids = expand_frontier(csr, frontier)
        keep = dist[nbrs] == UNREACHABLE
        if edge_ok is not None:
            keep &= edge_ok[eids]
        if vertex_ok is not None:
            keep &= vertex_ok[nbrs]
        frontier = np.unique(nbrs[keep])
        dist[frontier] = level
    return dist


def bfs_levels_ordered(
    csr: CSRAdjacency,
    source: int,
    *,
    edge_ok: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[np.ndarray]]:
    """BFS with parents, reproducing the reference queue's discovery order.

    Returns ``(dist, parent, parent_eid, level_order)`` where ``parent``
    holds -1 at unreachable vertices, ``source`` maps to itself, and
    ``level_order[k]`` lists the vertices of level ``k`` in the exact
    order the reference deque BFS would dequeue them.  Each vertex's
    parent is its *first* discoverer in that order - bit-identical to the
    pure-Python ``bfs_tree``.
    """
    n = csr.num_vertices
    dist = np.full(n, UNREACHABLE, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    parent_eid = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    parent[source] = source
    frontier = np.array([source], dtype=np.int64)
    level_order = [frontier]
    level = 0
    while frontier.size:
        level += 1
        srcs, nbrs, eids = expand_frontier(csr, frontier)
        keep = dist[nbrs] == UNREACHABLE
        if edge_ok is not None:
            keep &= edge_ok[eids]
        srcs, nbrs, eids = srcs[keep], nbrs[keep], eids[keep]
        uniq, first = np.unique(nbrs, return_index=True)
        order = np.argsort(first, kind="stable")
        frontier = uniq[order]
        discoverer = first[order]
        dist[frontier] = level
        parent[frontier] = srcs[discoverer]
        parent_eid[frontier] = eids[discoverer]
        if frontier.size:
            level_order.append(frontier)
    return dist, parent, parent_eid, level_order


class FailureSweep(SweepHandle):
    """Hop distances under single-edge failures, reusing one base BFS tree.

    ``edge_ok`` (optional) masks the graph down to a structure ``H``; the
    sweep then answers ``dist(source, ., H \\ {e})``.  Vectors returned
    for no-op failures are the *shared* base array - treat as read-only.
    """

    def __init__(
        self,
        csr: CSRAdjacency,
        source: int,
        *,
        edge_ok: Optional[np.ndarray] = None,
    ) -> None:
        self.csr = csr
        self.source = source
        self.edge_ok = edge_ok
        self.base, self._parent, self._parent_eid, level_order = bfs_levels_ordered(
            csr, source, edge_ok=edge_ok
        )
        self.base.setflags(write=False)
        self._tin, self._tout, self._preorder = self._euler(level_order)

    @classmethod
    def from_base_state(
        cls,
        csr: CSRAdjacency,
        source: int,
        arrays,
        *,
        edge_ok: Optional[np.ndarray] = None,
    ) -> "FailureSweep":
        """Rebuild a sweep handle from :meth:`base_state` arrays.

        Skips the base BFS and the Euler walk entirely: ``arrays`` maps
        the six :meth:`base_state` keys to int64 arrays (typically views
        into a shared-memory segment), so construction is O(1) in graph
        size.  The arrays must describe the base tree of exactly this
        ``(csr, source, edge_ok)`` triple - callers (the shm worker
        bodies) guarantee that by keying on the published sweep request.
        """
        self = cls.__new__(cls)
        self.csr = csr
        self.source = source
        self.edge_ok = edge_ok
        self.base = np.asarray(arrays["base"], dtype=np.int64)
        if self.base.flags.writeable:  # shared views arrive read-only
            self.base.setflags(write=False)
        self._parent = np.asarray(arrays["parent"], dtype=np.int64)
        self._parent_eid = np.asarray(arrays["parent_eid"], dtype=np.int64)
        self._tin = np.asarray(arrays["tin"], dtype=np.int64)
        self._tout = np.asarray(arrays["tout"], dtype=np.int64)
        self._preorder = np.asarray(arrays["preorder"], dtype=np.int64)
        return self

    def base_state(self):
        """The precomputed arrays :meth:`from_base_state` rebuilds from.

        ``(key, array)`` pairs in a fixed order - exactly what
        ``shm.publish_base_state`` packs into a base segment.
        """
        return (
            ("base", self.base),
            ("parent", self._parent),
            ("parent_eid", self._parent_eid),
            ("tin", self._tin),
            ("tout", self._tout),
            ("preorder", self._preorder),
        )

    def _euler(
        self, level_order: List[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Preorder + entry/exit intervals of the base BFS tree."""
        n = self.csr.num_vertices
        parent = self._parent
        children: List[List[int]] = [[] for _ in range(n)]
        for level in level_order[1:]:
            for v in level.tolist():
                children[parent[v]].append(v)
        tin = np.full(n, -1, dtype=np.int64)
        tout = np.full(n, -1, dtype=np.int64)
        preorder = np.empty(sum(len(lv) for lv in level_order), dtype=np.int64)
        clock = 0
        stack: List[Tuple[int, bool]] = [(self.source, False)]
        while stack:
            v, done = stack.pop()
            if done:
                tout[v] = clock
                continue
            tin[v] = clock
            preorder[clock] = v
            clock += 1
            stack.append((v, True))
            for c in reversed(children[v]):
                stack.append((c, False))
        return tin, tout, preorder

    def tree_child(self, eid: int) -> Optional[int]:
        """The deeper endpoint of ``eid`` if it is a base-tree edge, else None."""
        u = int(self.csr.edge_u[eid])
        v = int(self.csr.edge_v[eid])
        if self._parent_eid[u] == eid:
            return u
        if self._parent_eid[v] == eid:
            return v
        return None

    def base_distances(self) -> np.ndarray:
        """The no-failure distance vector (read-only, shared)."""
        return self.base

    def failed(self, eid: int) -> np.ndarray:
        """Hop distances after failing edge ``eid``; shares ``base`` when
        the failure provably changes nothing."""
        if not 0 <= eid < self.csr.num_edges:
            return self.base  # id names no edge: bans nothing (parity)
        if self.edge_ok is not None and not self.edge_ok[eid]:
            return self.base  # edge absent from the masked graph
        child = self.tree_child(eid)
        if child is None:
            # Non-tree edge: the base tree certifies every distance
            # without it, and removal cannot shrink any distance.
            return self.base
        return self._recompute_subtree(eid, child)

    def _recompute_subtree(self, eid: int, child: int) -> np.ndarray:
        csr = self.csr
        base = self.base
        tin_c = self._tin[child]
        tout_c = self._tout[child]
        sub = self._preorder[tin_c:tout_c]
        new = base.copy()
        new[sub] = UNREACHABLE

        # Every surviving path into the subtree last enters through a
        # crossing edge (a, b) with a outside; outside distances are
        # unchanged, so b is seeded at base[a] + 1.
        srcs, nbrs, eids = expand_frontier(csr, sub)
        ok = eids != eid
        if self.edge_ok is not None:
            ok &= self.edge_ok[eids]
        tn = self._tin[nbrs]
        inside = (tn >= tin_c) & (tn < tout_c)
        crossing = ok & ~inside & (base[nbrs] != UNREACHABLE)

        tent = np.full(csr.num_vertices, _INF, dtype=np.int64)
        np.minimum.at(tent, srcs[crossing], base[nbrs[crossing]] + 1)

        # Multi-level-seeded BFS restricted to the subtree: settle levels
        # in increasing order (unit weights make this exact; a vertex is
        # settled once ``new`` holds its level).
        while True:
            cand = tent[sub]
            open_mask = (cand != _INF) & (new[sub] == UNREACHABLE)
            if not open_mask.any():
                break
            lvl = int(cand[open_mask].min())
            now = sub[open_mask & (cand == lvl)]
            new[now] = lvl
            _, n2, e2 = expand_frontier(csr, now)
            ok2 = e2 != eid
            if self.edge_ok is not None:
                ok2 &= self.edge_ok[e2]
            t2 = self._tin[n2]
            ok2 &= (t2 >= tin_c) & (t2 < tout_c) & (new[n2] == UNREACHABLE)
            targets = n2[ok2]
            if targets.size:
                np.minimum.at(tent, targets, lvl + 1)
        return new

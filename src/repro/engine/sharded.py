"""Process-sharded sweeps: the ROADMAP's cross-process engine.

The all-single-edge-failures sweep - unweighted ``failure_sweep`` and
its weighted analogue ``weighted_failure_sweep`` alike - is
embarrassingly parallel over the requested edge ids, so
:class:`ShardedEngine` wraps any single-process engine and fans both
sweeps out over worker processes; every other primitive (including the
batched detour traversals, whose per-level amortization lives inside one
process) delegates to the wrapped engine unchanged.  The sweeps stay
**bit-identical** to the base engine by construction: shards are
contiguous slices of the request, each shard is computed by the base
engine itself, and items are yielded back in request order.

Sharding only pays when each worker amortizes its pickled copy of the
graph (plus, for the weighted sweep, the tree and weights) over many
failures, so small sweeps (fewer than ``min_batch`` edges per
prospective worker) and sweeps already running inside a harness pool
worker (``REPRO_IN_WORKER``) degrade to the base engine in-process.  The
verification oracle auto-upgrades to this engine for graphs above
``REPRO_SHARD_THRESHOLD`` edges (see :mod:`repro.core.verify`).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Set

from repro._types import EdgeId, Vertex
from repro.engine.base import ReplacementSweepItem, SweepHandle, TraversalEngine
from repro.graphs.graph import Graph

__all__ = ["ShardedEngine", "SHARD_MIN_BATCH_ENV_VAR"]

#: Overrides the minimum per-worker batch size (default 64).
SHARD_MIN_BATCH_ENV_VAR = "REPRO_SHARD_MIN_BATCH"

_DEFAULT_MIN_BATCH = 64


def _sweep_shard(
    graph: Graph,
    source: Vertex,
    eids: List[EdgeId],
    allowed_edges: Optional[Set[EdgeId]],
    engine_name: str,
) -> List[Sequence[int]]:
    """Worker body: run one contiguous slice of the sweep on the base engine."""
    from repro.engine.registry import get_engine

    engine = get_engine(engine_name)
    return list(
        engine.failure_sweep(graph, source, eids, allowed_edges=allowed_edges)
    )


def _weighted_sweep_shard(
    graph: Graph,
    weights,
    tree,
    eids: List[EdgeId],
    engine_name: str,
) -> List[ReplacementSweepItem]:
    """Worker body: one contiguous slice of the weighted failure sweep."""
    from repro.engine.registry import get_engine

    engine = get_engine(engine_name)
    return list(engine.weighted_failure_sweep(graph, weights, tree, eids=eids))


class ShardedEngine(TraversalEngine):
    """Wrap a single-process engine, sharding ``failure_sweep`` across processes."""

    name = "sharded"

    def __init__(
        self,
        base: Optional[str] = None,
        *,
        max_workers: Optional[int] = None,
        min_batch: Optional[int] = None,
    ) -> None:
        self._base_name = base
        self._max_workers = max_workers
        self._min_batch = min_batch

    # -- delegation ----------------------------------------------------
    def base_engine(self) -> TraversalEngine:
        """The wrapped single-process engine (never sharded itself)."""
        from repro.engine.registry import available_engines, get_engine

        if self._base_name is not None:
            return get_engine(self._base_name)
        engine = get_engine()
        if engine.name != self.name:
            return engine
        # The process default *is* the sharded engine: fall back to the
        # fastest single-process backend.
        names = [n for n in available_engines() if n != self.name]
        return get_engine(names[-1] if names else "python")

    def distances(self, graph, source, **kwargs):
        return self.base_engine().distances(graph, source, **kwargs)

    def parents(self, graph, source, **kwargs):
        return self.base_engine().parents(graph, source, **kwargs)

    def distances_subset(self, graph, source, targets, **kwargs):
        return self.base_engine().distances_subset(graph, source, targets, **kwargs)

    def sweep(self, graph, source, *, allowed_edges=None) -> SweepHandle:
        return self.base_engine().sweep(graph, source, allowed_edges=allowed_edges)

    def shortest_paths(self, graph, weights, source, **kwargs):
        return self.base_engine().shortest_paths(graph, weights, source, **kwargs)

    def seeded_shortest_paths(self, graph, weights, seeds, **kwargs):
        return self.base_engine().seeded_shortest_paths(graph, weights, seeds, **kwargs)

    def batched_shortest_paths(
        self, graph, weights, sources, banned_vertices_per_source=None, **kwargs
    ):
        return self.base_engine().batched_shortest_paths(
            graph, weights, sources, banned_vertices_per_source, **kwargs
        )

    def batched_seeded_shortest_paths(self, graph, weights, batches, **kwargs):
        return self.base_engine().batched_seeded_shortest_paths(
            graph, weights, batches, **kwargs
        )

    @property
    def weighted_backend(self) -> str:
        return f"delegates to {self.base_engine().name!r}"

    @property
    def replacement_backend(self) -> str:
        return f"process-sharded weighted sweep over {self.base_engine().name!r}"

    @property
    def detour_backend(self) -> str:
        return f"delegates to {self.base_engine().name!r}"

    def halved(self) -> "ShardedEngine":
        """A copy capped at half this engine's worker budget.

        For callers that consume *two* sweeps in lockstep (the
        verification oracle runs a graph-side and a structure-side sweep
        concurrently): giving each side half the budget keeps the total
        process count at the machine's worker budget instead of twice it.
        """
        from repro.harness.parallel import default_worker_count

        workers = (
            self._max_workers
            if self._max_workers is not None
            else default_worker_count()
        )
        return ShardedEngine(
            base=self._base_name,
            max_workers=max(1, workers // 2),
            min_batch=self._min_batch,
        )

    # -- the sharded primitive -----------------------------------------
    def _effective_min_batch(self) -> int:
        if self._min_batch is not None:
            return self._min_batch
        from repro.util.validation import env_int

        return env_int(SHARD_MIN_BATCH_ENV_VAR, _DEFAULT_MIN_BATCH)

    def _plan(self, num_eids: int) -> int:
        """Number of worker processes to use (1 = stay in-process)."""
        from repro.harness.parallel import default_worker_count, in_worker_process

        if in_worker_process():
            return 1  # never nest pools under the harness fanout
        min_batch = self._effective_min_batch()
        workers = (
            self._max_workers
            if self._max_workers is not None
            else default_worker_count()
        )
        return max(1, min(workers, num_eids // max(1, min_batch)))

    def failure_sweep(
        self,
        graph: Graph,
        source: Vertex,
        eids: Sequence[EdgeId],
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> Iterator[Sequence[int]]:
        """Hop-distance vectors per failed edge, sharded over processes.

        Contiguous slices of ``eids`` go to workers running the base
        engine; vectors come back in request order, so output is
        bit-identical to the base engine's own sweep.
        """
        base = self.base_engine()
        eid_list = list(eids)
        workers = self._plan(len(eid_list))
        if workers <= 1:
            yield from base.failure_sweep(
                graph, source, eid_list, allowed_edges=allowed_edges
            )
            return
        yield from self._stream_shards(
            eid_list, workers, self._effective_min_batch(),
            lambda pool, shard: pool.submit(
                _sweep_shard, graph, source, shard, allowed_edges, base.name
            ),
        )

    def weighted_failure_sweep(
        self,
        graph: Graph,
        weights,
        tree,
        eids: Optional[Sequence[EdgeId]] = None,
    ) -> Iterator[ReplacementSweepItem]:
        """Replacement data per failed tree edge, sharded over processes.

        Contiguous slices of the tree edges go to workers running the
        base engine's ``weighted_failure_sweep``; items come back in
        request order, so output is bit-identical to the base engine's
        own sweep.  Each worker re-pickles the graph, weights, and tree
        - the same fixed cost ``_plan``'s economics already assume.
        """
        base = self.base_engine()
        edge_list = list(eids) if eids is not None else tree.tree_edges()
        workers = self._plan(len(edge_list))
        if workers <= 1:
            yield from base.weighted_failure_sweep(
                graph, weights, tree, eids=edge_list
            )
            return
        yield from self._stream_shards(
            edge_list, workers, self._effective_min_batch(),
            lambda pool, shard: pool.submit(
                _weighted_sweep_shard, graph, weights, tree, shard, base.name
            ),
        )

    def _stream_shards(
        self,
        items: List,
        workers: int,
        min_batch: int,
        submit: Callable,
    ) -> Iterator:
        """Shard ``items`` contiguously and stream worker results in order."""
        from concurrent.futures import ProcessPoolExecutor

        # Shards never drop below min_batch items (each one re-pickles
        # the inputs and recomputes its own base state — the fixed cost
        # _plan's economics assume); beyond that, up to 4 shards per
        # worker keeps the pool busy through the tail.
        num_shards = min(
            workers * 4, max(workers, len(items) // max(1, min_batch))
        )
        num_shards = max(1, min(num_shards, len(items)))
        bounds = [
            (len(items) * i) // num_shards for i in range(num_shards + 1)
        ]
        shards = [
            items[bounds[i] : bounds[i + 1]]
            for i in range(num_shards)
            if bounds[i] < bounds[i + 1]
        ]
        # No context manager: an abandoned generator (verify early-exits
        # on max_violations) must not block on in-flight shards, so the
        # finally shuts down without waiting and lets running workers
        # finish in the background.
        pool = ProcessPoolExecutor(max_workers=workers)
        # Bounded submission window: at most workers + 2 shards are
        # in flight or completed-but-undrained at once, so parent
        # memory stays O(window * shard results) no matter how much
        # faster the pool produces than the caller consumes.
        window = workers + 2
        pending = []
        next_shard = 0
        try:
            while next_shard < len(shards) or pending:
                while next_shard < len(shards) and len(pending) < window:
                    pending.append(submit(pool, shards[next_shard]))
                    next_shard += 1
                future = pending.pop(0)  # request order
                for item in future.result():
                    yield item
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

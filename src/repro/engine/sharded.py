"""Process-sharded sweeps: the ROADMAP's cross-process engine.

The all-single-edge-failures sweep - unweighted ``failure_sweep`` and
its weighted analogue ``weighted_failure_sweep`` alike - is
embarrassingly parallel over the requested edge ids, so
:class:`ShardedEngine` wraps any single-process engine and fans both
sweeps out over worker processes; every other primitive (including the
batched detour traversals, whose per-level amortization lives inside one
process) delegates to the wrapped engine unchanged.  The sweeps stay
**bit-identical** to the base engine by construction: shards are
contiguous slices of the request, each shard is computed by the base
engine itself, and items are yielded back in request order.

Transport
---------
Shard inputs travel one of two ways:

* **shared-memory plane** (default when numpy and
  ``multiprocessing.shared_memory`` are available, see
  :mod:`repro.engine.shm`): the graph's CSR view - plus the weight
  perturbations and tree arrays for the weighted sweep - is published
  once per graph/tree into a shared segment and the sweep's edge-id
  request into a second, per-sweep segment; the unweighted sweep adds a
  third per-sweep segment carrying the parent's precomputed *base
  state* (base distances/parents plus the Euler arrays), so workers
  rebuild their sweep handle in O(1) instead of re-running the base
  traversal.  Each shard then submits only ``(plane handle, request
  handle, base-state handle, lo, hi)``, O(1) bytes in graph size.
  Workers attach zero-copy and memoize all per-sweep state - the
  rebuilt unweighted handle and the weighted sweep's prepared setup
  alike - keyed on ``(plane, request)``, so a shard's fixed cost is
  just its slice of failures.
* **pickle** (fallback): the historical path - every shard re-pickles
  the graph (plus weights and tree for the weighted sweep).  Used when
  shared memory or numpy is unavailable, when ``REPRO_SHM=0``, when the
  weight assignment has no fixed-width export (the exact scheme's
  big-int perturbations), or when publishing fails (e.g. ``/dev/shm``
  exhausted).

Workers run on a **persistent pool** (created on first use, reused
across sweeps, marked with ``REPRO_IN_WORKER`` so nested parallel
primitives degrade to their serial form instead of oversubscribing).
Small sweeps - fewer than ``min_batch`` failures per prospective worker
- and sweeps already running inside a pool worker degrade to the base
engine in-process.  Both sweeps share ``min_batch`` defaults of 16
under the shared-memory transport and 64 under pickle (each shard
re-ships and re-builds the graph there, so it needs a large slice to
amortize).  The shm default used to apply only to the unweighted sweep;
with the weighted per-shard setup now memoized per ``(plane, request)``
in the worker (``shm._weighted_sweep_state``), neither sweep has an
O(n) per-shard term left and both ride the fine-shard economics.
``REPRO_SHARD_MIN_BATCH`` overrides every default.  The verification oracle
auto-upgrades to this engine for graphs above ``REPRO_SHARD_THRESHOLD``
edges (see :mod:`repro.core.verify`).
"""

from __future__ import annotations

import atexit
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro._types import EdgeId, Vertex
from repro.engine.base import ReplacementSweepItem, SweepHandle, TraversalEngine
from repro.errors import EngineError
from repro.graphs.graph import Graph

__all__ = [
    "ShardedEngine",
    "SHARD_MIN_BATCH_ENV_VAR",
    "shutdown_pools",
]

#: Overrides the minimum per-worker batch size (both transports).
SHARD_MIN_BATCH_ENV_VAR = "REPRO_SHARD_MIN_BATCH"

#: Pickle transport: each shard re-pickles and re-builds the graph, so
#: it needs a large slice to amortize.
_DEFAULT_MIN_BATCH = 64

#: Shared-memory transport: the payload is O(1), the unweighted base
#: state arrives prebuilt through the base-state segment, and the
#: weighted setup is memoized per (plane, request) - no per-shard fixed
#: cost on either sweep, so much finer shards pay off (re-derived in
#: ``benchmarks/bench_sharded.py``).
_DEFAULT_MIN_BATCH_SHM = 16


# ----------------------------------------------------------------------
# pickle-transport worker bodies (the fallback path)
# ----------------------------------------------------------------------
def _sweep_shard(
    graph: Graph,
    source: Vertex,
    eids: List[EdgeId],
    allowed_edges: Optional[Set[EdgeId]],
    engine_name: str,
) -> List[Sequence[int]]:
    """Worker body: run one contiguous slice of the sweep on the base engine."""
    from repro.engine.registry import get_engine

    engine = get_engine(engine_name)
    return list(
        engine.failure_sweep(graph, source, eids, allowed_edges=allowed_edges)
    )


def _weighted_sweep_shard(
    graph: Graph,
    weights,
    tree,
    eids: List[EdgeId],
    engine_name: str,
) -> List[ReplacementSweepItem]:
    """Worker body: one contiguous slice of the weighted failure sweep."""
    from repro.engine.registry import get_engine

    engine = get_engine(engine_name)
    return list(engine.weighted_failure_sweep(graph, weights, tree, eids=eids))


# ----------------------------------------------------------------------
# the persistent worker pool
# ----------------------------------------------------------------------
#: start-method key -> (pool, size).  One pool per start method, created
#: on first use, grown by recreation when a sweep asks for more workers,
#: reused across sweeps so the shm transport's per-worker attachments
#: (and the spawn method's interpreter startup) amortize.
_POOLS: Dict[str, Tuple[object, int]] = {}


def _pool_key(start_method: Optional[str]) -> str:
    return start_method or "default"


def _get_pool(workers: int, start_method: Optional[str] = None):
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    from repro.harness.parallel import default_worker_count, mark_worker

    key = _pool_key(start_method)
    entry = _POOLS.get(key)
    if entry is not None:
        pool, size = entry
        if size >= workers and not getattr(pool, "_broken", False):
            return pool
        del _POOLS[key]
        # Grow-by-recreation must not cancel futures: a concurrently
        # streaming sweep (verify zips two generators through this
        # pool) may still hold pending work on the old pool - let it
        # drain in the background while new submissions go to the
        # bigger pool.
        pool.shutdown(wait=False, cancel_futures=getattr(pool, "_broken", False))
    size = max(workers, default_worker_count())
    ctx = multiprocessing.get_context(start_method) if start_method else None
    # Workers are initializer-marked: a sweep worker that itself reaches
    # a parallel primitive (verify's sharded auto-upgrade, a nested
    # harness fanout) must degrade to its serial form.
    pool = ProcessPoolExecutor(
        max_workers=size, initializer=mark_worker, mp_context=ctx
    )
    _POOLS[key] = (pool, size)
    return pool


def _discard_pool(
    start_method: Optional[str] = None, *, only_broken: bool = False
) -> None:
    """Drop a pool so the next sweep builds a fresh one.

    ``only_broken`` guards the failure path: by the time a sweep
    observes BrokenProcessPool, another engine may already have
    replaced the cached pool with a healthy one - don't kill that.
    """
    key = _pool_key(start_method)
    entry = _POOLS.get(key)
    if entry is None:
        return
    if only_broken and not getattr(entry[0], "_broken", False):
        return
    del _POOLS[key]
    entry[0].shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every persistent sweep pool (no waiting)."""
    for key in list(_POOLS):
        _discard_pool(key if key != "default" else None)


atexit.register(shutdown_pools)


def _shard_bounds(
    num_items: int, workers: int, min_batch: int
) -> List[Tuple[int, int]]:
    """Contiguous ``(lo, hi)`` shard bounds over ``num_items`` items.

    Every shard holds at least ``min_batch`` items - the documented
    contract: a shard's fixed cost (its pickled inputs or its base
    traversal) must amortize over a worthwhile slice.  Beyond that, up
    to 4 shards per worker keep the pool busy through the tail.  A
    request smaller than ``min_batch`` yields a single (short) shard -
    ``_plan`` keeps those in-process, so that only arises when a caller
    drives this helper directly.
    """
    if num_items <= 0:
        return []
    num_shards = min(workers * 4, num_items // max(1, min_batch))
    num_shards = max(1, min(num_shards, num_items))
    bounds = [num_items * i // num_shards for i in range(num_shards + 1)]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(num_shards)
        if bounds[i] < bounds[i + 1]
    ]


class ShardedEngine(TraversalEngine):
    """Wrap a single-process engine, sharding ``failure_sweep`` across processes."""

    name = "sharded"
    parallel_sweeps = True

    def __init__(
        self,
        base: Optional[str] = None,
        *,
        max_workers: Optional[int] = None,
        min_batch: Optional[int] = None,
        transport: Optional[str] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if transport not in (None, "shm", "pickle"):
            raise EngineError(
                f"transport must be None, 'shm' or 'pickle', got {transport!r}"
            )
        self._base_name = base
        self._max_workers = max_workers
        self._min_batch = min_batch
        self._transport = transport
        self._start_method = start_method

    # -- delegation ----------------------------------------------------
    def base_engine(self) -> TraversalEngine:
        """The wrapped single-process engine (never sharded itself)."""
        from repro.engine.registry import available_engines, get_engine

        if self._base_name is not None:
            return get_engine(self._base_name)
        engine = get_engine()
        if engine.name != self.name:
            return engine
        # The process default *is* the sharded engine: fall back to the
        # fastest single-process backend.
        names = [n for n in available_engines() if n != self.name]
        return get_engine(names[-1] if names else "python")

    def distances(self, graph, source, **kwargs):
        return self.base_engine().distances(graph, source, **kwargs)

    def parents(self, graph, source, **kwargs):
        return self.base_engine().parents(graph, source, **kwargs)

    def distances_subset(self, graph, source, targets, **kwargs):
        return self.base_engine().distances_subset(graph, source, targets, **kwargs)

    def sweep(self, graph, source, *, allowed_edges=None) -> SweepHandle:
        return self.base_engine().sweep(graph, source, allowed_edges=allowed_edges)

    def shortest_paths(self, graph, weights, source, **kwargs):
        return self.base_engine().shortest_paths(graph, weights, source, **kwargs)

    def seeded_shortest_paths(self, graph, weights, seeds, **kwargs):
        return self.base_engine().seeded_shortest_paths(graph, weights, seeds, **kwargs)

    def batched_shortest_paths(
        self, graph, weights, sources, banned_vertices_per_source=None, **kwargs
    ):
        return self.base_engine().batched_shortest_paths(
            graph, weights, sources, banned_vertices_per_source, **kwargs
        )

    def batched_seeded_shortest_paths(self, graph, weights, batches, **kwargs):
        return self.base_engine().batched_seeded_shortest_paths(
            graph, weights, batches, **kwargs
        )

    @property
    def weighted_backend(self) -> str:
        return f"delegates to {self.base_engine().name!r}"

    @property
    def replacement_backend(self) -> str:
        return f"process-sharded weighted sweep over {self.base_engine().name!r}"

    @property
    def detour_backend(self) -> str:
        return f"delegates to {self.base_engine().name!r}"

    @property
    def transport(self) -> str:
        """How shard inputs reach the workers (``repro engines`` prints it)."""
        from repro.engine import shm

        enabled = shm.transport_enabled()
        if self._transport == "pickle":
            return "pickle (forced)"
        if self._transport == "shm":
            # Forced shm never falls back - without the transport,
            # sweeps raise instead of silently pickling.
            return (
                "shared-memory plane (forced)"
                if enabled
                else "shared-memory plane (forced, unavailable: sweeps raise)"
            )
        if enabled:
            return "shared-memory plane (pickle fallback)"
        return "pickle (shared memory unavailable)"

    @property
    def threads(self) -> str:
        """Resolved worker budget (``repro engines`` prints it)."""
        from repro.harness.parallel import (
            MAX_WORKERS_ENV_VAR,
            default_worker_count,
        )

        workers = (
            self._max_workers
            if self._max_workers is not None
            else default_worker_count()
        )
        return f"{workers} worker processes x 1 thread (${MAX_WORKERS_ENV_VAR})"

    @property
    def plane_segments(self) -> str:
        """Which shm segments this engine's sweeps publish."""
        from repro.engine import shm

        if self._transport == "pickle" or not shm.transport_enabled():
            return "none (shard inputs pickled per shard)"
        return (
            "graph/tree plane (per object) + request + base-state (per sweep)"
        )

    def halved(self) -> "ShardedEngine":
        """A copy capped at half this engine's worker budget.

        For callers that consume *two* sweeps in lockstep (the
        verification oracle runs a graph-side and a structure-side sweep
        concurrently): giving each side half the budget keeps the total
        in-flight shard count at the machine's worker budget instead of
        twice it (both sides share the one persistent pool).
        """
        from repro.harness.parallel import default_worker_count

        workers = (
            self._max_workers
            if self._max_workers is not None
            else default_worker_count()
        )
        return ShardedEngine(
            base=self._base_name,
            max_workers=max(1, workers // 2),
            min_batch=self._min_batch,
            transport=self._transport,
            start_method=self._start_method,
        )

    # -- the sharded primitive -----------------------------------------
    def _shm_wanted(self) -> bool:
        """Whether this engine may use the shared-memory transport."""
        if self._transport == "pickle":
            return False
        from repro.engine import shm

        enabled = shm.transport_enabled()
        if self._transport == "shm" and not enabled:
            raise EngineError(
                "shared-memory transport forced but unavailable "
                f"(numpy/shared_memory missing or ${shm.SHM_ENV_VAR}=0)"
            )
        return enabled

    def _effective_min_batch(self, *, shm: bool) -> int:
        if self._min_batch is not None:
            return self._min_batch
        from repro.util.validation import env_int

        return env_int(
            SHARD_MIN_BATCH_ENV_VAR,
            _DEFAULT_MIN_BATCH_SHM if shm else _DEFAULT_MIN_BATCH,
        )

    def _plan(self, num_eids: int, min_batch: Optional[int] = None) -> int:
        """Number of worker processes to use (1 = stay in-process)."""
        from repro.harness.parallel import default_worker_count, in_worker_process

        if in_worker_process():
            return 1  # never nest pools under the harness fanout
        if min_batch is None:
            min_batch = self._effective_min_batch(
                shm=self._transport != "pickle" and self._shm_wanted()
            )
        workers = (
            self._max_workers
            if self._max_workers is not None
            else default_worker_count()
        )
        return max(1, min(workers, num_eids // max(1, min_batch)))

    def failure_sweep(
        self,
        graph: Graph,
        source: Vertex,
        eids: Sequence[EdgeId],
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> Iterator[Sequence[int]]:
        """Hop-distance vectors per failed edge, sharded over processes.

        Contiguous slices of ``eids`` go to workers running the base
        engine; vectors come back in request order, so output is
        bit-identical to the base engine's own sweep.
        """
        base = self.base_engine()
        eid_list = list(eids)
        use_shm = self._shm_wanted()
        min_batch = self._effective_min_batch(shm=use_shm)
        workers = self._plan(len(eid_list), min_batch)
        if workers <= 1:
            yield from base.failure_sweep(
                graph, source, eid_list, allowed_edges=allowed_edges
            )
            return
        def publish():
            from repro.engine import shm

            plane = shm.graph_plane(graph)
            if plane is None:
                return None
            request = shm.publish_request(eid_list, allowed_edges, source)
            if request is None:
                return None
            # Ship the base traversal too: the parent computes it once
            # and every worker rebuilds its sweep handle in O(1) from
            # the mapped arrays instead of re-running an O(n + m) BFS.
            # None (reference base engine, exhausted /dev/shm) degrades
            # to the historical per-worker memoized traversal.
            base_state = shm.publish_base_state(
                base.sweep(graph, source, allowed_edges=allowed_edges)
            )
            return shm, plane, request, base_state

        yield from self._transport_stream(
            len(eid_list), workers, min_batch, use_shm, base.name,
            publish,
            shm_worker_name="_shm_sweep_shard",
            pickle_submit=lambda pool, lo, hi: pool.submit(
                _sweep_shard,
                graph, source, eid_list[lo:hi], allowed_edges, base.name,
            ),
            in_process=lambda: base.failure_sweep(
                graph, source, eid_list, allowed_edges=allowed_edges
            ),
        )

    def weighted_failure_sweep(
        self,
        graph: Graph,
        weights,
        tree,
        eids: Optional[Sequence[EdgeId]] = None,
    ) -> Iterator[ReplacementSweepItem]:
        """Replacement data per failed tree edge, sharded over processes.

        Contiguous slices of the tree edges go to workers running the
        base engine's ``weighted_failure_sweep``; items come back in
        request order, so output is bit-identical to the base engine's
        own sweep.
        """
        base = self.base_engine()
        edge_list = list(eids) if eids is not None else tree.tree_edges()
        # The plane needs the fixed-width perturbation export; the exact
        # scheme's big ints ride the pickle transport instead - unless
        # shm is forced, which never silently falls back.  The export is
        # only computed when shm is actually in play (_shm_wanted first):
        # a pickle-transport parent never needs the O(m) array.
        use_shm = self._shm_wanted()
        if use_shm:
            use_shm = weights.pert_array() is not None
            if self._transport == "shm" and not use_shm:
                raise EngineError(
                    "shared-memory transport forced but the weight "
                    "assignment has no fixed-width export "
                    f"(scheme {weights.scheme!r})"
                )
        # Under shm the weighted sweep now shares the unweighted path's
        # fine-shard economics: the per-sweep setup (plan gating, dist
        # decomposition, Euler conversions, the edge->child map) is
        # memoized per (plane, request) in the worker - zero-copy off
        # the plane's mapped arrays - so a shard's only cost is its own
        # slice.  Historically this line forced the pickle-sized batch
        # on both transports because every shard rebuilt that O(n)
        # setup from the façade's Python lists.
        min_batch = self._effective_min_batch(shm=use_shm)
        workers = self._plan(len(edge_list), min_batch)
        if workers <= 1:
            yield from base.weighted_failure_sweep(
                graph, weights, tree, eids=edge_list
            )
            return
        def publish():
            from repro.engine import shm

            plane = shm.tree_plane(graph, weights, tree)
            if plane is None:
                return None
            request = shm.publish_request(edge_list)
            if request is None:
                return None
            # No separate base-state segment: the weighted base state
            # (hop/pert decomposition, Euler arrays) already rides the
            # tree plane; workers memoize their prepared setup off it.
            return shm, plane, request, None

        yield from self._transport_stream(
            len(edge_list), workers, min_batch, use_shm, base.name,
            publish,
            shm_worker_name="_shm_weighted_shard",
            pickle_submit=lambda pool, lo, hi: pool.submit(
                _weighted_sweep_shard,
                graph, weights, tree, edge_list[lo:hi], base.name,
            ),
            in_process=lambda: base.weighted_failure_sweep(
                graph, weights, tree, eids=edge_list
            ),
        )

    def _transport_stream(
        self,
        num_items: int,
        workers: int,
        min_batch: int,
        use_shm: bool,
        base_name: str,
        publish: Callable,
        *,
        shm_worker_name: str,
        pickle_submit: Callable,
        in_process: Callable,
    ) -> Iterator:
        """Run one sweep through whichever transport is viable.

        ``publish`` returns ``(shm module, plane, request, base_state)``
        - ``base_state`` a :class:`~repro.engine.shm.SweepBaseState` or
        None - or None altogether; on None (transport off or publish
        failed, e.g. ``/dev/shm`` exhausted) the sweep re-plans under
        pickle economics - its per-shard fixed cost is O(m), so
        shm-sized shards would violate the ``min_batch`` contract -
        degrading to ``in_process`` when the re-plan no longer justifies
        a pool.  The request and base-state segments are unlinked when
        the stream completes or is abandoned.  On abandonment a
        just-started shard may lose the attach race and fail with
        FileNotFoundError - harmless by construction: its future was
        already discarded with the generator (normal completion has no
        such race; every future was drained first).
        """
        if use_shm:
            published = publish()
            if published is not None:
                shm, plane, request, base_state = published
                base_handle = None if base_state is None else base_state.handle
                worker_fn = getattr(shm, shm_worker_name)
                try:
                    yield from self._stream_shards(
                        _shard_bounds(num_items, workers, min_batch),
                        workers,
                        lambda pool, lo, hi: pool.submit(
                            worker_fn,
                            plane.handle, request.handle, base_handle,
                            lo, hi, base_name,
                        ),
                    )
                finally:
                    request.unlink()
                    if base_state is not None:
                        base_state.unlink()
                return
            if self._transport == "shm":  # forced shm never falls back
                raise EngineError(
                    "shared-memory transport forced but publishing the "
                    "plane/request failed (shared memory exhausted?)"
                )
            min_batch = self._effective_min_batch(shm=False)
            workers = self._plan(num_items, min_batch)
            if workers <= 1:
                yield from in_process()
                return
        yield from self._stream_shards(
            _shard_bounds(num_items, workers, min_batch),
            workers,
            pickle_submit,
        )

    def _stream_shards(
        self,
        bounds: List[Tuple[int, int]],
        workers: int,
        submit_range: Callable,
    ) -> Iterator:
        """Submit ``(lo, hi)`` shards to the persistent pool, stream results.

        Results come back in request order.  The in-flight window is
        capped at ``workers``: the pool is shared (and may be larger
        than this engine's budget), so the window is what enforces an
        explicit ``max_workers`` cap - at most ``workers`` of this
        sweep's shards execute concurrently, and parent memory stays
        O(window * shard results) no matter how much faster the pool
        produces than the caller consumes.  The pool is re-resolved per
        refill because another engine may have grown (recreated) it
        mid-stream; submitted futures on the retired pool still drain.
        An abandoned generator (verify early-exits on
        ``max_violations``) cancels its pending shards in the
        ``finally`` and leaves running ones to finish in the background
        - the pool itself persists for the next sweep.
        """
        from concurrent.futures.process import BrokenProcessPool

        window = workers
        pending: List = []
        next_shard = 0
        try:
            while next_shard < len(bounds) or pending:
                while next_shard < len(bounds) and len(pending) < window:
                    lo, hi = bounds[next_shard]
                    pool = _get_pool(workers, self._start_method)
                    pending.append(submit_range(pool, lo, hi))
                    next_shard += 1
                future = pending.pop(0)  # request order
                for item in future.result():
                    yield item
        except BrokenProcessPool:
            # A dead worker poisons the whole pool; drop it so the next
            # sweep starts clean, and let the caller see the failure.
            _discard_pool(self._start_method, only_broken=True)
            raise
        finally:
            for future in pending:
                future.cancel()

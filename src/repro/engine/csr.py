"""Immutable CSR (compressed sparse row) view of a :class:`Graph`.

The view stores the undirected adjacency as three flat int64 arrays:

``indptr``
    ``n + 1`` offsets; the neighbors of vertex ``v`` live in
    ``indices[indptr[v]:indptr[v + 1]]``.
``indices``
    ``2m`` neighbor vertex ids, *in the graph's adjacency-list order* -
    this makes every array kernel tie-break identically to the
    pure-Python reference loops.
``edge_ids``
    ``2m`` edge ids aligned with ``indices``.

``edge_u``/``edge_v`` (length ``m``) mirror the canonical endpoint
arrays so kernels can resolve an edge id without touching the Graph.

The view is built lazily on first use and cached on the graph itself
(``Graph._csr_cache``); graphs are immutable after construction, so the
cache never invalidates.  Derived graphs (subgraphs, copies) start with
an empty cache of their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["CSRAdjacency", "csr_view"]


@dataclass(frozen=True)
class CSRAdjacency:
    """Flat-array adjacency; treat every array as read-only."""

    num_vertices: int
    num_edges: int
    indptr: np.ndarray
    indices: np.ndarray
    edge_ids: np.ndarray
    edge_u: np.ndarray
    edge_v: np.ndarray
    #: Optional object the arrays' memory belongs to (a shared-memory
    #: segment, see :mod:`repro.engine.shm`).  numpy's base chain does
    #: NOT keep a ``SharedMemory`` alive - its ``__del__`` unmaps the
    #: buffer under any surviving views - so every holder of this view
    #: must (transitively) hold the owner too.
    owner: object = field(default=None, compare=False, repr=False)

    def degree_array(self) -> np.ndarray:
        """Degrees as an int64 array (a fresh array per call)."""
        return self.indptr[1:] - self.indptr[:-1]

    @classmethod
    def from_arrays(
        cls,
        num_vertices: int,
        num_edges: int,
        arrays,
        owner: object = None,
    ) -> "CSRAdjacency":
        """Rebuild a view from a mapping of its five named arrays.

        Used by the shared-memory plane (:mod:`repro.engine.shm`) to
        wrap arrays attached zero-copy from another process; the caller
        is responsible for the arrays being int64 and read-only, and
        passes the backing segment as ``owner`` so the mapping lives as
        long as the view does.
        """
        return cls(
            num_vertices=num_vertices,
            num_edges=num_edges,
            indptr=arrays["indptr"],
            indices=arrays["indices"],
            edge_ids=arrays["edge_ids"],
            edge_u=arrays["edge_u"],
            edge_v=arrays["edge_v"],
            owner=owner,
        )


def _build(graph: Graph) -> CSRAdjacency:
    n = graph.num_vertices
    m = graph.num_edges
    indptr = np.zeros(n + 1, dtype=np.int64)
    indices = np.empty(2 * m, dtype=np.int64)
    edge_ids = np.empty(2 * m, dtype=np.int64)
    pos = 0
    for v in range(n):
        adj = graph.adjacency(v)
        for w, eid in adj:
            indices[pos] = w
            edge_ids[pos] = eid
            pos += 1
        indptr[v + 1] = pos
    edge_list = graph.edge_list()
    if edge_list:
        eu, ev = zip(*edge_list)
    else:
        eu, ev = (), ()
    view = CSRAdjacency(
        num_vertices=n,
        num_edges=m,
        indptr=indptr,
        indices=indices,
        edge_ids=edge_ids,
        edge_u=np.asarray(eu, dtype=np.int64),
        edge_v=np.asarray(ev, dtype=np.int64),
    )
    for arr in (view.indptr, view.indices, view.edge_ids, view.edge_u, view.edge_v):
        arr.setflags(write=False)
    return view


def csr_view(graph: Graph) -> CSRAdjacency:
    """The graph's CSR view, built on first use and cached on the graph."""
    cached = graph._csr_cache
    if cached is None:
        cached = _build(graph)
        graph._csr_cache = cached
    return cached

"""The traversal-engine contract.

A :class:`TraversalEngine` is the single dispatch point for every
unweighted (hop) traversal in the library, plus the weighted tie-broken
Dijkstra used by the construction.  Two implementations ship by default
(see :mod:`repro.engine.registry`):

``"python"``
    The executable specification: pure-Python adjacency-list loops,
    byte-for-byte the library's historical behavior.
``"csr"``
    Frontier-based numpy kernels over a cached CSR view of the graph
    (:mod:`repro.engine.csr` / :mod:`repro.engine.kernels`).  Registered
    only when numpy is importable.
``"sharded"``
    A wrapper (:mod:`repro.engine.sharded`) that delegates everything to
    a single-process base engine but fans ``failure_sweep`` batches out
    over worker processes — the sweep is embarrassingly parallel over
    edge ids, and contiguous sharding keeps it bit-identical to the base.

Contract
--------
* ``distances`` / ``parents`` / ``distances_subset`` must be
  *bit-identical* to the python engine for every input: same distance
  lists, same parent maps (including tie-breaking, which both engines
  derive from the graph's adjacency-list order), same dict contents.
* ``failure_sweep`` yields, for each requested edge id, the hop-distance
  vector of ``G \\ {e}`` (or ``H \\ {e}`` when ``allowed_edges`` masks the
  graph down to a structure).  Backends may return any integer sequence
  type (the csr engine yields numpy arrays, possibly *shared* between
  failures whose distances coincide with the no-failure base - callers
  must treat yielded vectors as read-only); only the values are part of
  the contract.
* ``shortest_paths`` / ``seeded_shortest_paths`` run the weighted
  tie-broken Dijkstra and must be *bit-identical* to the reference in
  :mod:`repro.spt.dijkstra`: same big-int distances, same
  parent/parent-edge trees, and the same
  :class:`~repro.errors.TieBreakError` behavior (ties are detected at
  relaxation time, an order-dependent event).  A composite weight is
  the lexicographic pair ``(hops, pert_sum)``; the full composite
  ``hops << shift`` overflows ``int64``, but the two components fit
  fixed width *separately* for the random scheme, which is how the csr
  engine's array kernels (:mod:`repro.engine.weighted_kernels`)
  implement the contract.  Backends advertise how they run weighted
  traversals via :attr:`TraversalEngine.weighted_backend`; assignments
  a backend cannot represent (the exact scheme's ``2**eid``
  perturbations) must transparently fall back to the reference.

Parity between registered engines is enforced by
``tests/test_engine_parity.py`` and ``tests/test_weighted_parity.py``;
the python engine remains the spec.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro._types import EdgeId, Vertex
from repro.graphs.graph import Graph

__all__ = [
    "TraversalEngine",
    "SweepHandle",
    "UNREACHABLE",
    "distances_equal",
    "num_unreachable",
]

#: Sentinel hop distance for unreachable vertices (shared by all engines).
UNREACHABLE = -1


class SweepHandle:
    """A prepared failure sweep: one base traversal, many failures.

    Obtained from :meth:`TraversalEngine.sweep`.  ``base_distances`` is
    the no-failure distance vector (computed once and shared with every
    no-op failure); ``failed(eid)`` is the distance vector after failing
    ``eid``.  Ids that do not name an edge of the (masked) graph ban
    nothing, exactly like the reference BFS's ``banned_edge`` filter.
    Returned vectors may be shared - treat them as read-only.
    """

    def base_distances(self) -> Sequence[int]:
        raise NotImplementedError

    def failed(self, eid: EdgeId) -> Sequence[int]:
        raise NotImplementedError


class TraversalEngine:
    """Abstract traversal backend; see the module docstring for the contract."""

    #: Registry key; subclasses override.
    name: str = "abstract"

    #: Human-readable description of how this engine runs the weighted
    #: traversals (``repro engines`` and E16 report it).
    weighted_backend: str = "reference big-int Dijkstra"

    # -- unweighted (hop) traversals -----------------------------------
    def distances(
        self,
        graph: Graph,
        source: Vertex,
        *,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        banned_vertices: Optional[Set[Vertex]] = None,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> List[int]:
        """Hop distances from ``source``; ``UNREACHABLE`` where unreached."""
        raise NotImplementedError

    def parents(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> Dict[Vertex, Vertex]:
        """BFS parent map ``{vertex: parent}`` (source maps to itself)."""
        raise NotImplementedError

    def distances_subset(
        self,
        graph: Graph,
        source: Vertex,
        targets: Iterable[Vertex],
        *,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        banned_vertices: Optional[Set[Vertex]] = None,
    ) -> Dict[Vertex, int]:
        """Hop distances to a target subset (``UNREACHABLE`` where unreached)."""
        raise NotImplementedError

    def sweep(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> SweepHandle:
        """Prepare a failure sweep over the (optionally masked) graph.

        The handle shares one base traversal between the no-failure
        vector and every failure, so callers that need both (the
        verification oracle) pay for the base exactly once per side.
        """
        raise NotImplementedError

    def failure_sweep(
        self,
        graph: Graph,
        source: Vertex,
        eids: Sequence[EdgeId],
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> Iterator[Sequence[int]]:
        """Hop-distance vectors after failing each edge of ``eids`` in turn.

        Equivalent to ``distances(graph, source, banned_edge=e,
        allowed_edges=allowed_edges)`` per edge, but backends amortize
        work across the whole sweep via :meth:`sweep`.  Lazy: nothing is
        computed until the first vector is consumed, so early-exiting
        callers (verification hitting ``max_violations``) stay cheap.
        """
        handle: Optional[SweepHandle] = None
        for eid in eids:
            if handle is None:
                handle = self.sweep(graph, source, allowed_edges=allowed_edges)
            yield handle.failed(eid)

    # -- weighted tie-broken traversals --------------------------------
    def shortest_paths(
        self,
        graph: Graph,
        weights,
        source: Vertex,
        *,
        banned_vertices: Optional[Set[Vertex]] = None,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        allowed_edges: Optional[Set[EdgeId]] = None,
        raise_on_tie: bool = True,
    ):
        """Weighted Dijkstra under composite tie-breaking weights."""
        raise NotImplementedError

    def seeded_shortest_paths(
        self,
        graph: Graph,
        weights,
        seeds,
        *,
        allowed_vertices: Set[Vertex],
        banned_edge: Optional[EdgeId] = None,
        raise_on_tie: bool = True,
    ):
        """Boundary-seeded Dijkstra restricted to ``allowed_vertices``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def distances_equal(a: Sequence[int], b: Sequence[int]) -> bool:
    """Whether two distance vectors (lists or numpy arrays) coincide."""
    if type(a) is list and type(b) is list:
        return a == b
    import numpy as np

    return bool(np.array_equal(a, b))


def num_unreachable(dist: Sequence[int]) -> int:
    """Count ``UNREACHABLE`` entries of a distance vector (list or array)."""
    if type(dist) is list:
        return sum(1 for d in dist if d == UNREACHABLE)
    import numpy as np

    return int(np.count_nonzero(np.asarray(dist) == UNREACHABLE))

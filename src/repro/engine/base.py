"""The traversal-engine contract.

A :class:`TraversalEngine` is the single dispatch point for every
unweighted (hop) traversal in the library, plus the weighted tie-broken
Dijkstra used by the construction.  Two implementations ship by default
(see :mod:`repro.engine.registry`):

``"python"``
    The executable specification: pure-Python adjacency-list loops,
    byte-for-byte the library's historical behavior.
``"csr"``
    Frontier-based numpy kernels over a cached CSR view of the graph
    (:mod:`repro.engine.csr` / :mod:`repro.engine.kernels`).  Registered
    only when numpy is importable.
``"sharded"``
    A wrapper (:mod:`repro.engine.sharded`) that delegates everything to
    a single-process base engine but fans ``failure_sweep`` batches out
    over worker processes — the sweep is embarrassingly parallel over
    edge ids, and contiguous sharding keeps it bit-identical to the base.

Contract
--------
* ``distances`` / ``parents`` / ``distances_subset`` must be
  *bit-identical* to the python engine for every input: same distance
  lists, same parent maps (including tie-breaking, which both engines
  derive from the graph's adjacency-list order), same dict contents.
* ``failure_sweep`` yields, for each requested edge id, the hop-distance
  vector of ``G \\ {e}`` (or ``H \\ {e}`` when ``allowed_edges`` masks the
  graph down to a structure).  Backends may return any integer sequence
  type (the csr engine yields numpy arrays, possibly *shared* between
  failures whose distances coincide with the no-failure base - callers
  must treat yielded vectors as read-only); only the values are part of
  the contract.
* ``shortest_paths`` / ``seeded_shortest_paths`` run the weighted
  tie-broken Dijkstra and must be *bit-identical* to the reference in
  :mod:`repro.spt.dijkstra`: same big-int distances, same
  parent/parent-edge trees, and the same
  :class:`~repro.errors.TieBreakError` behavior (ties are detected at
  relaxation time, an order-dependent event).  A composite weight is
  the lexicographic pair ``(hops, pert_sum)``; the full composite
  ``hops << shift`` overflows ``int64``, but the two components fit
  fixed width *separately* for the random scheme, which is how the csr
  engine's array kernels (:mod:`repro.engine.weighted_kernels`)
  implement the contract.  Backends advertise how they run weighted
  traversals via :attr:`TraversalEngine.weighted_backend`; assignments
  a backend cannot represent (the exact scheme's ``2**eid``
  perturbations) must transparently fall back to the reference.
* **Batched replacement primitives** (PR 4).  ``weighted_failure_sweep``
  yields, per failed tree edge of a
  :class:`~repro.spt.spt_tree.ShortestPathTree`, the replacement
  ``dist``/``parent``/``parent_eid`` maps restricted to the failed
  subtree - the weighted analogue of ``failure_sweep``.
  ``batched_shortest_paths`` and ``batched_seeded_shortest_paths`` run
  many independent weighted traversals (the Pcons detour Dijkstras, the
  vertex-fault subtree recomputes) through one amortized path.  The
  reference implementations *are* the per-call loops below, so parity
  between the per-call and batched paths holds by construction on the
  python engine; array backends must reproduce them bit-identically
  (maps, big-int distances, tie/error *kinds* - which of several
  simultaneous ties raises first is not part of the contract, only that
  one does).  Backends advertise these paths via
  :attr:`TraversalEngine.replacement_backend` and
  :attr:`TraversalEngine.detour_backend`.

Parity between registered engines is enforced by
``tests/test_engine_parity.py`` and ``tests/test_weighted_parity.py``;
the python engine remains the spec.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro._types import EdgeId, Vertex
from repro.graphs.graph import Graph

__all__ = [
    "TraversalEngine",
    "SweepHandle",
    "UNREACHABLE",
    "distances_equal",
    "num_unreachable",
    "replacement_failure",
    "ReplacementSweepItem",
    "SeedBatch",
]

#: One item of ``weighted_failure_sweep``: ``(eid, child, dist, parent,
#: parent_eid)`` with the maps keyed by the failed subtree's vertices
#: (``dist[v] is None`` where the failure disconnects ``v``; parents of
#: boundary vertices point outside the subtree).
ReplacementSweepItem = Tuple[
    EdgeId,
    Vertex,
    Dict[Vertex, Optional[int]],
    Dict[Vertex, Vertex],
    Dict[Vertex, EdgeId],
]

#: One batch of ``batched_seeded_shortest_paths``: ``(seeds,
#: allowed_vertices, banned_edge)`` with the same semantics as a single
#: ``seeded_shortest_paths`` call.
SeedBatch = Tuple[Sequence[Tuple[int, Vertex, Vertex, EdgeId]], Set[Vertex], Optional[EdgeId]]

#: Sentinel hop distance for unreachable vertices (shared by all engines).
UNREACHABLE = -1


class SweepHandle:
    """A prepared failure sweep: one base traversal, many failures.

    Obtained from :meth:`TraversalEngine.sweep`.  ``base_distances`` is
    the no-failure distance vector (computed once and shared with every
    no-op failure); ``failed(eid)`` is the distance vector after failing
    ``eid``.  Ids that do not name an edge of the (masked) graph ban
    nothing, exactly like the reference BFS's ``banned_edge`` filter.
    Returned vectors may be shared - treat them as read-only.
    """

    def base_distances(self) -> Sequence[int]:
        raise NotImplementedError

    def failed(self, eid: EdgeId) -> Sequence[int]:
        raise NotImplementedError


class TraversalEngine:
    """Abstract traversal backend; see the module docstring for the contract."""

    #: Registry key; subclasses override.
    name: str = "abstract"

    #: Human-readable description of how this engine runs the weighted
    #: traversals (``repro engines`` and E16 report it).
    weighted_backend: str = "reference big-int Dijkstra"

    #: How the engine computes the weighted failure sweep (``repro
    #: engines`` and E16's ``replacement`` column report it).
    replacement_backend: str = "per-edge seeded recompute (reference)"

    #: How the engine runs batched multi-source traversals (``repro
    #: engines`` and E16's ``detour_batch`` column report it).
    detour_backend: str = "per-source reference Dijkstra"

    #: How the engine moves inputs to its compute (``repro engines``
    #: reports it).  In-process engines share the caller's memory; the
    #: sharded engine overrides this with its cross-process transport
    #: (shared-memory plane vs pickle, see :mod:`repro.engine.shm`).
    transport: str = "in-process"

    #: How many concurrent executors the engine's sweeps run on
    #: (``repro engines`` reports it).  Single-process engines run the
    #: caller's one thread; the sharded/threaded engines override this
    #: with their resolved worker/thread budget.
    threads: str = "1 (the calling thread)"

    #: Which shared-memory plane segments the engine publishes for its
    #: sweeps (``repro engines`` reports it; see :mod:`repro.engine.shm`
    #: for the graph / tree / base-state / request segment kinds).
    plane_segments: str = "none (in-process memory)"

    #: Which compiled toolchain backs the engine's kernels (``repro
    #: engines`` reports it).  Interpreted and numpy engines have none;
    #: the compiled engine overrides this with its resolved cc, flags,
    #: and kernel cache path (see :mod:`repro.engine.cbuild`).
    compiler: str = "none (interpreted/numpy kernels)"

    #: Whether ``failure_sweep``/``weighted_failure_sweep`` fan out over
    #: parallel executors.  The verification oracle streams its two
    #: sweep sides through ``failure_sweep`` (with a ``halved()`` budget
    #: each) on such engines instead of sharing per-side sweep handles.
    parallel_sweeps: bool = False

    # -- unweighted (hop) traversals -----------------------------------
    def distances(
        self,
        graph: Graph,
        source: Vertex,
        *,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        banned_vertices: Optional[Set[Vertex]] = None,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> List[int]:
        """Hop distances from ``source``; ``UNREACHABLE`` where unreached."""
        raise NotImplementedError

    def parents(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> Dict[Vertex, Vertex]:
        """BFS parent map ``{vertex: parent}`` (source maps to itself)."""
        raise NotImplementedError

    def distances_subset(
        self,
        graph: Graph,
        source: Vertex,
        targets: Iterable[Vertex],
        *,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        banned_vertices: Optional[Set[Vertex]] = None,
    ) -> Dict[Vertex, int]:
        """Hop distances to a target subset (``UNREACHABLE`` where unreached)."""
        raise NotImplementedError

    def sweep(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> SweepHandle:
        """Prepare a failure sweep over the (optionally masked) graph.

        The handle shares one base traversal between the no-failure
        vector and every failure, so callers that need both (the
        verification oracle) pay for the base exactly once per side.
        """
        raise NotImplementedError

    def failure_sweep(
        self,
        graph: Graph,
        source: Vertex,
        eids: Sequence[EdgeId],
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> Iterator[Sequence[int]]:
        """Hop-distance vectors after failing each edge of ``eids`` in turn.

        Equivalent to ``distances(graph, source, banned_edge=e,
        allowed_edges=allowed_edges)`` per edge, but backends amortize
        work across the whole sweep via :meth:`sweep`.  Lazy: nothing is
        computed until the first vector is consumed, so early-exiting
        callers (verification hitting ``max_violations``) stay cheap.
        """
        handle: Optional[SweepHandle] = None
        for eid in eids:
            if handle is None:
                handle = self.sweep(graph, source, allowed_edges=allowed_edges)
            yield handle.failed(eid)

    # -- weighted tie-broken traversals --------------------------------
    def shortest_paths(
        self,
        graph: Graph,
        weights,
        source: Vertex,
        *,
        banned_vertices: Optional[Set[Vertex]] = None,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        allowed_edges: Optional[Set[EdgeId]] = None,
        raise_on_tie: bool = True,
    ):
        """Weighted Dijkstra under composite tie-breaking weights."""
        raise NotImplementedError

    def seeded_shortest_paths(
        self,
        graph: Graph,
        weights,
        seeds,
        *,
        allowed_vertices: Set[Vertex],
        banned_edge: Optional[EdgeId] = None,
        raise_on_tie: bool = True,
    ):
        """Boundary-seeded Dijkstra restricted to ``allowed_vertices``."""
        raise NotImplementedError

    # -- batched replacement primitives --------------------------------
    def weighted_failure_sweep(
        self,
        graph: Graph,
        weights,
        tree,
        eids: Optional[Sequence[EdgeId]] = None,
    ) -> Iterator[ReplacementSweepItem]:
        """Replacement data for every failed tree edge, amortized.

        For each tree edge of ``tree`` (or the explicit ``eids`` subset,
        in order; ids that are not tree edges raise
        :class:`~repro.errors.GraphError`) yields the weighted
        replacement ``dist``/``parent``/``parent_eid`` maps of the
        failed subtree - exactly what a per-edge
        ``seeded_shortest_paths`` recompute produces.  This reference
        implementation *is* that per-edge loop; array backends stack the
        subtree recomputes into shared level passes.  Lazy: nothing is
        computed until the first item is consumed.
        """
        if eids is None:
            eids = tree.tree_edges()
        for eid in eids:
            yield replacement_failure(self, graph, weights, tree, eid)

    def batched_shortest_paths(
        self,
        graph: Graph,
        weights,
        sources: Sequence[Vertex],
        banned_vertices_per_source: Optional[Iterable[Optional[Set[Vertex]]]] = None,
        *,
        raise_on_tie: bool = True,
    ):
        """Independent weighted Dijkstras from many sources, amortized.

        Yields one :class:`~repro.spt.result.ShortestPathResult` per
        source, in order, each bit-identical to the corresponding
        ``shortest_paths(source, banned_vertices=...)`` call.
        ``banned_vertices_per_source`` may be any iterable consumed in
        lockstep with ``sources`` (callers with large ban sets stream
        them one at a time); a length mismatch raises GraphError.
        Invalid inputs raise at or before the offending source's
        position in the stream.  Lazy - consume with
        ``zip(sources, ...)``.
        """
        for source, banned in _zip_sources_and_bans(
            sources, banned_vertices_per_source
        ):
            yield self.shortest_paths(
                graph,
                weights,
                source,
                banned_vertices=banned,
                raise_on_tie=raise_on_tie,
            )

    def batched_seeded_shortest_paths(
        self,
        graph: Graph,
        weights,
        batches: Iterable[SeedBatch],
        *,
        raise_on_tie: bool = True,
    ):
        """Independent boundary-seeded Dijkstras, amortized.

        ``batches`` holds ``(seeds, allowed_vertices, banned_edge)``
        triples; yields one result per batch, in order, each
        bit-identical to the corresponding ``seeded_shortest_paths``
        call (a batch with no seeds settles nothing).  Lazy.
        """
        for seeds, allowed_vertices, banned_edge in batches:
            yield self.seeded_shortest_paths(
                graph,
                weights,
                list(seeds),
                allowed_vertices=allowed_vertices,
                banned_edge=banned_edge,
                raise_on_tie=raise_on_tie,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def _zip_sources_and_bans(
    sources: Sequence[Vertex],
    bans: Optional[Iterable[Optional[Set[Vertex]]]],
):
    """Pair each source with its ban set, failing fast on a length
    mismatch instead of silently truncating like plain ``zip``."""
    if bans is None:
        for source in sources:
            yield source, None
        return
    from itertools import zip_longest

    from repro.errors import GraphError

    sentinel = object()
    for source, banned in zip_longest(sources, bans, fillvalue=sentinel):
        if source is sentinel or banned is sentinel:
            raise GraphError(
                "sources and banned_vertices_per_source have different lengths"
            )
        yield source, banned


def replacement_failure(
    engine: TraversalEngine, graph: Graph, weights, tree, eid: EdgeId
) -> ReplacementSweepItem:
    """One failed tree edge's replacement data, the reference way.

    Seeds: for every edge ``(a, b)`` crossing into the failed subtree,
    the outer endpoint ``a`` keeps its original distance (its shortest
    path cannot enter the subtree); entering through the edge costs
    ``W(ab)``.  The recompute is a seeded traversal restricted to the
    subtree, dispatched through ``engine.seeded_shortest_paths``.  This
    is the executable spec of ``weighted_failure_sweep`` and the lazy
    single-failure path of :class:`repro.spt.replacement.ReplacementEngine`.
    """
    child = tree.edge_child(eid)
    sub = tree.subtree_vertices(child)
    sub_set = set(sub)
    tin, tout = tree.tin[child], tree.tout[child]
    tins = tree.tin
    dist0 = tree.dist
    w_arr = weights.weights

    seeds: List[Tuple[int, Vertex, Vertex, EdgeId]] = []
    for b in sub:
        for a, cross_eid in graph.adjacency(b):
            if cross_eid == eid:
                continue
            ta = tins[a]
            if tin <= ta < tout and ta != -1:
                continue  # internal edge
            da = dist0[a]
            if da is None:
                continue  # outer endpoint itself unreachable
            seeds.append((da + w_arr[cross_eid], b, a, cross_eid))

    if seeds:
        sp = engine.seeded_shortest_paths(
            graph, weights, seeds, allowed_vertices=sub_set, banned_edge=eid
        )
        dist = {v: sp.dist[v] for v in sub}
        parent = {v: sp.parent[v] for v in sub if sp.dist[v] is not None}
        parent_eid = {v: sp.parent_eid[v] for v in sub if sp.dist[v] is not None}
    else:
        dist = {v: None for v in sub}
        parent = {}
        parent_eid = {}
    return eid, child, dist, parent, parent_eid


def distances_equal(a: Sequence[int], b: Sequence[int]) -> bool:
    """Whether two distance vectors (lists or numpy arrays) coincide."""
    if type(a) is list and type(b) is list:
        return a == b
    import numpy as np

    return bool(np.array_equal(a, b))


def num_unreachable(dist: Sequence[int]) -> int:
    """Count ``UNREACHABLE`` entries of a distance vector (list or array)."""
    if type(dist) is list:
        return sum(1 for d in dist if d == UNREACHABLE)
    import numpy as np

    return int(np.count_nonzero(np.asarray(dist) == UNREACHABLE))

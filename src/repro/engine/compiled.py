"""The compiled-kernel engine (``csr-c``): C loops for the sweep hot pair.

:class:`CompiledEngine` subclasses the csr engine and replaces exactly
the two kernels every single-edge-failure sweep spends its time in -
the ordered base BFS (+ Euler walk) and the per-failure subtree
recompute - with the flat C loops of ``_ckernels.c``, compiled on
demand and loaded by :mod:`repro.engine.cbuild`.  The C functions read
the same cached CSR int64 arrays and boolean masks through raw
pointers and fill caller-allocated numpy outputs, so results are
**bit-identical** to the numpy kernels (same adjacency-order
tie-breaking, enforced by the parity suites under
``REPRO_ENGINE=csr-c``) while skipping numpy's per-level array
orchestration.  Everything the C side does not accelerate - weighted
traversals, the batched replacement subsystem, subset queries - is
inherited from :class:`~repro.engine.csr_engine.CSREngine` unchanged.

Because ctypes releases the GIL around every call, the ``csr-mt``
engine windows these kernels across genuinely concurrent threads by
simply using ``csr-c`` as its base engine (its default when this
engine is registered), and the sharded/shm plane is untouched: the
arrays are the same, and :class:`CompiledFailureSweep` publishes and
rebuilds the exact base state the numpy sweep does.

Degradation mirrors the csr engine's no-numpy gating: with no working
compiler (or under ``REPRO_CC=0``) the engine is not registered at
all, and a compile/load failure after registration falls back to the
inherited numpy paths at runtime (one warning, identical results).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro._types import EdgeId, Vertex
from repro.engine import cbuild
from repro.engine.csr import CSRAdjacency, csr_view
from repro.engine.csr_engine import CSREngine, _edge_ok_mask, _vertex_ok_mask
from repro.engine.kernels import FailureSweep
from repro.engine.python_engine import _check_source
from repro.graphs.graph import Graph

__all__ = ["CompiledEngine", "CompiledFailureSweep"]


def _ptr(array: Optional[np.ndarray]):
    """ctypes ``void*`` for an array (None passes NULL)."""
    return None if array is None else array.ctypes.data


class CompiledFailureSweep(FailureSweep):
    """A :class:`FailureSweep` whose hot pair runs in C.

    Construction performs the ordered base BFS *and* the Euler walk in
    one foreign call; ``_recompute_subtree`` fills the post-failure
    distance vector in another.  All derived state (``base_state()``,
    ``tree_child``, the no-op-failure short-circuits) is inherited -
    the arrays have the same dtypes, shapes, and values as the numpy
    sweep's, so shm publication and rebuilds interoperate freely.
    ``kernels=None`` (a handle rebuilt where the library failed to
    load) runs entirely on the inherited numpy paths.
    """

    def __init__(
        self,
        csr: CSRAdjacency,
        source: int,
        *,
        edge_ok: Optional[np.ndarray] = None,
        kernels: Optional[cbuild.KernelLib] = None,
    ) -> None:
        if kernels is None:
            super().__init__(csr, source, edge_ok=edge_ok)
            self._kernels = None
            return
        self._kernels = kernels
        self.csr = csr
        self.source = source
        self.edge_ok = edge_ok
        n = csr.num_vertices
        dist = np.empty(n, dtype=np.int64)
        parent = np.empty(n, dtype=np.int64)
        parent_eid = np.empty(n, dtype=np.int64)
        order = np.empty(n, dtype=np.int64)
        tin = np.empty(n, dtype=np.int64)
        tout = np.empty(n, dtype=np.int64)
        preorder = np.empty(n, dtype=np.int64)
        visited = kernels.bfs_euler(
            n,
            _ptr(csr.indptr),
            _ptr(csr.indices),
            _ptr(csr.edge_ids),
            source,
            _ptr(edge_ok),
            _ptr(dist),
            _ptr(parent),
            _ptr(parent_eid),
            _ptr(order),
            _ptr(tin),
            _ptr(tout),
            _ptr(preorder),
        )
        if visited < 0:  # allocation failure inside the kernel
            super().__init__(csr, source, edge_ok=edge_ok)
            self._kernels = None
            return
        self.base = dist
        self.base.setflags(write=False)
        self._parent = parent
        self._parent_eid = parent_eid
        self._tin = tin
        self._tout = tout
        self._preorder = preorder[:visited]

    @classmethod
    def from_base_state(
        cls,
        csr: CSRAdjacency,
        source: int,
        arrays,
        *,
        edge_ok: Optional[np.ndarray] = None,
        kernels: Optional[cbuild.KernelLib] = None,
    ) -> "CompiledFailureSweep":
        """Rebuild from published base-state arrays (O(1), no traversal),
        attaching the kernels so recomputes still run in C."""
        self = super().from_base_state(csr, source, arrays, edge_ok=edge_ok)
        self._kernels = kernels
        return self

    def _recompute_subtree(self, eid: int, child: int) -> np.ndarray:
        kernels = self._kernels
        if kernels is None:
            return super()._recompute_subtree(eid, child)
        csr = self.csr
        out = np.empty(csr.num_vertices, dtype=np.int64)
        rc = kernels.recompute_subtree(
            csr.num_vertices,
            _ptr(csr.indptr),
            _ptr(csr.indices),
            _ptr(csr.edge_ids),
            _ptr(self.edge_ok),
            eid,
            _ptr(self._tin),
            int(self._tin[child]),
            int(self._tout[child]),
            _ptr(np.ascontiguousarray(self._preorder, dtype=np.int64)),
            _ptr(self.base),
            _ptr(out),
        )
        if rc != 0:  # allocation failure inside the kernel
            return super()._recompute_subtree(eid, child)
        return out


class CompiledEngine(CSREngine):
    """csr engine with the sweep hot pair compiled to C (see module doc)."""

    name = "csr-c"

    @property
    def compiler(self) -> str:
        """The resolved toolchain line (``repro engines`` prints it).
        Reading it triggers the on-demand compile, so the printed cache
        path is the real loaded library."""
        return cbuild.compiler_description()

    @staticmethod
    def available() -> bool:
        """Registration gate: a C compiler exists and ``REPRO_CC`` != 0."""
        return cbuild.available()

    def _kernels(self) -> Optional[cbuild.KernelLib]:
        return cbuild.kernel_library()

    def distances(
        self,
        graph: Graph,
        source: Vertex,
        *,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        banned_vertices: Optional[Set[Vertex]] = None,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> List[int]:
        kernels = self._kernels()
        if kernels is None:
            return super().distances(
                graph,
                source,
                banned_edge=banned_edge,
                banned_edges=banned_edges,
                banned_vertices=banned_vertices,
                allowed_edges=allowed_edges,
            )
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(
            csr.num_edges,
            banned_edge=banned_edge,
            banned_edges=banned_edges,
            allowed_edges=allowed_edges,
        )
        vertex_ok = _vertex_ok_mask(csr.num_vertices, banned_vertices)
        n = csr.num_vertices
        dist = np.empty(n, dtype=np.int64)
        order = np.empty(n, dtype=np.int64)
        kernels.bfs_order(
            n,
            _ptr(csr.indptr),
            _ptr(csr.indices),
            _ptr(csr.edge_ids),
            source,
            _ptr(edge_ok),
            _ptr(vertex_ok),
            _ptr(dist),
            None,
            None,
            _ptr(order),
        )
        return dist.tolist()

    def parents(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> Dict[Vertex, Vertex]:
        kernels = self._kernels()
        if kernels is None:
            return super().parents(graph, source, allowed_edges=allowed_edges)
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(csr.num_edges, allowed_edges=allowed_edges)
        n = csr.num_vertices
        dist = np.empty(n, dtype=np.int64)
        parent = np.empty(n, dtype=np.int64)
        order = np.empty(n, dtype=np.int64)
        visited = kernels.bfs_order(
            n,
            _ptr(csr.indptr),
            _ptr(csr.indices),
            _ptr(csr.edge_ids),
            source,
            _ptr(edge_ok),
            None,
            _ptr(dist),
            _ptr(parent),
            None,
            _ptr(order),
        )
        reached = order[:visited]
        return dict(
            zip(reached.tolist(), parent[reached].tolist())
        )

    def sweep(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> CompiledFailureSweep:
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(csr.num_edges, allowed_edges=allowed_edges)
        return CompiledFailureSweep(
            csr, source, edge_ok=edge_ok, kernels=self._kernels()
        )

    def sweep_from_base_state(
        self,
        graph: Graph,
        source: Vertex,
        arrays,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> CompiledFailureSweep:
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(csr.num_edges, allowed_edges=allowed_edges)
        return CompiledFailureSweep.from_base_state(
            csr, source, arrays, edge_ok=edge_ok, kernels=self._kernels()
        )

"""The compiled-kernel engine (``csr-c``): C loops for the traversal hot paths.

:class:`CompiledEngine` subclasses the csr engine and replaces the
kernels the experiment suite spends its time in - the sweep hot pair
(ordered base BFS + Euler walk, per-failure subtree recompute) and the
weighted ``(hops, pert_sum)`` level relaxation behind ``run_pcons``,
``weighted_failure_sweep``, and the batched shortest-path primitives -
with the flat C loops of ``_ckernels.c``, compiled on demand and loaded
by :mod:`repro.engine.cbuild`.  The C functions read the same cached
CSR int64 arrays and boolean masks through raw pointers and fill
caller-allocated numpy outputs, so results are **bit-identical** to the
numpy kernels (same adjacency-order tie-breaking, same weighted settle
order and tie events, enforced by the parity suites under
``REPRO_ENGINE=csr-c``) while skipping numpy's per-level array
orchestration.

The weighted routing goes through ``CSREngine._weighted_levels``, so
every weighted surface - single-source, seeded, the stacked batched
variants, the chunked ``PreparedWeightedSweep`` - lands on the one C
kernel, seed intake (running-min semantics) included.  The Python-side
gating is unchanged: the exact
scheme's ``2**eid`` perturbations are not int64-representable, so
:func:`~repro.engine.weighted_kernels.weighted_plan` routes them to the
big-int reference Dijkstra before any kernel - numpy or C - is
considered.  When the C kernel detects the reference's order-dependent
tie event it bails out and the traversal reruns on the numpy path,
which replays ties exactly and raises the reference's
:class:`~repro.errors.TieBreakError`, message and all.

Because ctypes releases the GIL around every call, the ``csr-mt``
engine windows these kernels - unweighted and weighted alike - across
genuinely concurrent threads by simply using ``csr-c`` as its base
engine (its default when this engine is registered), and the
sharded/shm plane is untouched: the arrays are the same,
:class:`CompiledFailureSweep` publishes and rebuilds the exact base
state the numpy sweep does, and the shm tree plane's mapped arrays
feed the weighted sweep's C kernel zero-copy.

Degradation mirrors the csr engine's no-numpy gating: with no working
compiler (or under ``REPRO_CC=0``) the engine is not registered at
all, and a compile/load failure after registration falls back to the
inherited numpy paths at runtime (one warning, identical results).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro._types import EdgeId, Vertex
from repro.engine import cbuild
from repro.engine.csr import CSRAdjacency, csr_view
from repro.engine.csr_engine import CSREngine, _edge_ok_mask, _vertex_ok_mask
from repro.engine.kernels import FailureSweep
from repro.engine.python_engine import _check_source
from repro.engine.weighted_kernels import SeedArrays
from repro.graphs.graph import Graph

__all__ = ["CompiledEngine", "CompiledFailureSweep"]


def _ptr(array: Optional[np.ndarray]):
    """ctypes ``void*`` for an array (None passes NULL)."""
    return None if array is None else array.ctypes.data


class CompiledFailureSweep(FailureSweep):
    """A :class:`FailureSweep` whose hot pair runs in C.

    Construction performs the ordered base BFS *and* the Euler walk in
    one foreign call; ``_recompute_subtree`` fills the post-failure
    distance vector in another.  All derived state (``base_state()``,
    ``tree_child``, the no-op-failure short-circuits) is inherited -
    the arrays have the same dtypes, shapes, and values as the numpy
    sweep's, so shm publication and rebuilds interoperate freely.
    ``kernels=None`` (a handle rebuilt where the library failed to
    load) runs entirely on the inherited numpy paths.
    """

    def __init__(
        self,
        csr: CSRAdjacency,
        source: int,
        *,
        edge_ok: Optional[np.ndarray] = None,
        kernels: Optional[cbuild.KernelLib] = None,
    ) -> None:
        if kernels is None:
            super().__init__(csr, source, edge_ok=edge_ok)
            self._kernels = None
            return
        self._kernels = kernels
        self.csr = csr
        self.source = source
        self.edge_ok = edge_ok
        n = csr.num_vertices
        dist = np.empty(n, dtype=np.int64)
        parent = np.empty(n, dtype=np.int64)
        parent_eid = np.empty(n, dtype=np.int64)
        order = np.empty(n, dtype=np.int64)
        tin = np.empty(n, dtype=np.int64)
        tout = np.empty(n, dtype=np.int64)
        preorder = np.empty(n, dtype=np.int64)
        visited = kernels.bfs_euler(
            n,
            _ptr(csr.indptr),
            _ptr(csr.indices),
            _ptr(csr.edge_ids),
            source,
            _ptr(edge_ok),
            _ptr(dist),
            _ptr(parent),
            _ptr(parent_eid),
            _ptr(order),
            _ptr(tin),
            _ptr(tout),
            _ptr(preorder),
        )
        if visited < 0:  # allocation failure inside the kernel
            super().__init__(csr, source, edge_ok=edge_ok)
            self._kernels = None
            return
        self.base = dist
        self.base.setflags(write=False)
        self._parent = parent
        self._parent_eid = parent_eid
        self._tin = tin
        self._tout = tout
        self._preorder = preorder[:visited]

    @classmethod
    def from_base_state(
        cls,
        csr: CSRAdjacency,
        source: int,
        arrays,
        *,
        edge_ok: Optional[np.ndarray] = None,
        kernels: Optional[cbuild.KernelLib] = None,
    ) -> "CompiledFailureSweep":
        """Rebuild from published base-state arrays (O(1), no traversal),
        attaching the kernels so recomputes still run in C."""
        self = super().from_base_state(csr, source, arrays, edge_ok=edge_ok)
        self._kernels = kernels
        return self

    def _recompute_subtree(self, eid: int, child: int) -> np.ndarray:
        kernels = self._kernels
        if kernels is None:
            return super()._recompute_subtree(eid, child)
        csr = self.csr
        out = np.empty(csr.num_vertices, dtype=np.int64)
        rc = kernels.recompute_subtree(
            csr.num_vertices,
            _ptr(csr.indptr),
            _ptr(csr.indices),
            _ptr(csr.edge_ids),
            _ptr(self.edge_ok),
            eid,
            _ptr(self._tin),
            int(self._tin[child]),
            int(self._tout[child]),
            _ptr(np.ascontiguousarray(self._preorder, dtype=np.int64)),
            _ptr(self.base),
            _ptr(out),
        )
        if rc != 0:  # allocation failure inside the kernel
            return super()._recompute_subtree(eid, child)
        return out


class CompiledEngine(CSREngine):
    """csr engine with the traversal hot paths compiled to C (see module doc)."""

    name = "csr-c"

    @property
    def compiler(self) -> str:
        """The resolved toolchain line (``repro engines`` prints it).
        Reading it triggers the on-demand compile, so the printed cache
        path is the real loaded library."""
        return cbuild.compiler_description()

    @property
    def weighted_backend(self) -> str:
        if self._kernels() is None:
            return "inherited numpy " + CSREngine.weighted_backend
        return "compiled C levels (random scheme) + reference fallback"

    @property
    def replacement_backend(self) -> str:
        if self._kernels() is None:
            return "inherited numpy " + CSREngine.replacement_backend
        return "compiled C stacked subtree sweep (random scheme) + reference fallback"

    @property
    def detour_backend(self) -> str:
        if self._kernels() is None:
            return "inherited numpy " + CSREngine.detour_backend
        return "compiled C stacked levels (random scheme) + reference fallback"

    @staticmethod
    def available() -> bool:
        """Registration gate: a C compiler exists and ``REPRO_CC`` != 0."""
        return cbuild.available()

    def _kernels(self) -> Optional[cbuild.KernelLib]:
        return cbuild.kernel_library()

    def _weighted_levels(
        self,
        csr,
        perts: np.ndarray,
        seeds,
        *,
        edge_ok: Optional[np.ndarray] = None,
        vertex_ok: Optional[np.ndarray] = None,
        allowed_ok: Optional[np.ndarray] = None,
        raise_on_tie: bool = True,
        scheme: str,
        num_vertices: Optional[int] = None,
        stacked: bool = False,
        banned_eid_per_batch: Optional[np.ndarray] = None,
        state=None,
        touched: Optional[np.ndarray] = None,
        layer_width: Optional[int] = None,
    ):
        """The weighted relaxation routed through the C kernel.

        The whole traversal - seed intake (running-min semantics) and
        the level loop - is one GIL-free foreign call over the raw seed
        columns.  A non-zero return (the reference's order-dependent
        tie event, a seed tie or invalid seed, or scratch allocation
        failure) restores any caller-owned state via ``touched`` and
        reruns the whole traversal on the numpy path, reproducing the
        reference's outcome - including which exception, with which
        message - exactly.
        """
        kernels = self._kernels()
        if kernels is None:
            return super()._weighted_levels(
                csr, perts, seeds,
                edge_ok=edge_ok, vertex_ok=vertex_ok, allowed_ok=allowed_ok,
                raise_on_tie=raise_on_tie, scheme=scheme,
                num_vertices=num_vertices, stacked=stacked,
                banned_eid_per_batch=banned_eid_per_batch,
                state=state, touched=touched, layer_width=layer_width,
            )
        n = csr.num_vertices if num_vertices is None else num_vertices
        if state is not None:
            settled, hop_t, pert_t, parent, parent_eid = state
        else:
            hop_t = np.full(n, -1, dtype=np.int64)
            pert_t = np.zeros(n, dtype=np.int64)
            parent = np.full(n, -1, dtype=np.int64)
            parent_eid = np.full(n, -1, dtype=np.int64)
            settled = np.zeros(n, dtype=bool)
        if isinstance(seeds, SeedArrays):
            cols = (seeds.hop, seeds.pert, seeds.vertex,
                    seeds.parent, seeds.parent_eid)
        elif seeds:
            cols = tuple(zip(*seeds))
        else:
            cols = ()
        if cols and len(cols[0]):
            cols = tuple(np.ascontiguousarray(c, dtype=np.int64) for c in cols)
            rc = kernels.weighted_levels(
                n,
                csr.num_vertices,
                _ptr(csr.indptr),
                _ptr(csr.indices),
                _ptr(csr.edge_ids),
                _ptr(perts),
                _ptr(edge_ok),
                _ptr(vertex_ok),
                _ptr(allowed_ok),
                _ptr(banned_eid_per_batch),
                len(cols[0]),
                _ptr(cols[0]),
                _ptr(cols[1]),
                _ptr(cols[2]),
                _ptr(cols[3]),
                _ptr(cols[4]),
                1 if raise_on_tie else 0,
                _ptr(settled),
                _ptr(hop_t),
                _ptr(pert_t),
                _ptr(parent),
                _ptr(parent_eid),
            )
            if rc != 0:
                if state is not None:
                    # Every write (intake and kernel alike) lands on
                    # allowed positions, so resetting the caller's
                    # touched set restores the buffers' entry contract.
                    reset = touched if touched is not None else slice(None)
                    settled[reset] = False
                    hop_t[reset] = -1
                return super()._weighted_levels(
                    csr, perts, seeds,
                    edge_ok=edge_ok, vertex_ok=vertex_ok,
                    allowed_ok=allowed_ok, raise_on_tie=raise_on_tie,
                    scheme=scheme, num_vertices=num_vertices,
                    stacked=stacked,
                    banned_eid_per_batch=banned_eid_per_batch,
                    state=state, touched=touched, layer_width=layer_width,
                )
        return settled, hop_t, pert_t, parent, parent_eid

    def distances(
        self,
        graph: Graph,
        source: Vertex,
        *,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        banned_vertices: Optional[Set[Vertex]] = None,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> List[int]:
        kernels = self._kernels()
        if kernels is None:
            return super().distances(
                graph,
                source,
                banned_edge=banned_edge,
                banned_edges=banned_edges,
                banned_vertices=banned_vertices,
                allowed_edges=allowed_edges,
            )
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(
            csr.num_edges,
            banned_edge=banned_edge,
            banned_edges=banned_edges,
            allowed_edges=allowed_edges,
        )
        vertex_ok = _vertex_ok_mask(csr.num_vertices, banned_vertices)
        n = csr.num_vertices
        dist = np.empty(n, dtype=np.int64)
        order = np.empty(n, dtype=np.int64)
        kernels.bfs_order(
            n,
            _ptr(csr.indptr),
            _ptr(csr.indices),
            _ptr(csr.edge_ids),
            source,
            _ptr(edge_ok),
            _ptr(vertex_ok),
            _ptr(dist),
            None,
            None,
            _ptr(order),
        )
        return dist.tolist()

    def parents(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> Dict[Vertex, Vertex]:
        kernels = self._kernels()
        if kernels is None:
            return super().parents(graph, source, allowed_edges=allowed_edges)
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(csr.num_edges, allowed_edges=allowed_edges)
        n = csr.num_vertices
        dist = np.empty(n, dtype=np.int64)
        parent = np.empty(n, dtype=np.int64)
        order = np.empty(n, dtype=np.int64)
        visited = kernels.bfs_order(
            n,
            _ptr(csr.indptr),
            _ptr(csr.indices),
            _ptr(csr.edge_ids),
            source,
            _ptr(edge_ok),
            None,
            _ptr(dist),
            _ptr(parent),
            None,
            _ptr(order),
        )
        reached = order[:visited]
        return dict(
            zip(reached.tolist(), parent[reached].tolist())
        )

    def sweep(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> CompiledFailureSweep:
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(csr.num_edges, allowed_edges=allowed_edges)
        return CompiledFailureSweep(
            csr, source, edge_ok=edge_ok, kernels=self._kernels()
        )

    def sweep_from_base_state(
        self,
        graph: Graph,
        source: Vertex,
        arrays,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> CompiledFailureSweep:
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(csr.num_edges, allowed_edges=allowed_edges)
        return CompiledFailureSweep.from_base_state(
            csr, source, arrays, edge_ok=edge_ok, kernels=self._kernels()
        )

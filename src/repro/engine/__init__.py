"""Pluggable traversal engines: one dispatch point for every traversal.

This package is the substrate the scaling roadmap plugs into.  Every
hop-BFS and failure sweep in the library - :mod:`repro.spt.bfs`, the
verification oracle, the failure simulator, the experiment harness -
routes through a :class:`~repro.engine.base.TraversalEngine` resolved by
the registry, instead of hand-rolled per-call-site loops.

Engine contract (details in :mod:`repro.engine.base`)
-----------------------------------------------------
* ``distances`` / ``parents`` / ``distances_subset``: masked hop BFS,
  bit-identical across engines (tie-breaking comes from the graph's
  adjacency-list order, which every backend must preserve).
* ``failure_sweep``: the batched all-single-edge-failures primitive -
  hop distances of ``G \\ {e}`` (or ``H \\ {e}`` under an
  ``allowed_edges`` mask) for a lazily-consumed stream of edge ids.
  Backends amortize: the csr engine computes one base BFS tree and
  recomputes only the subtree hanging under each failed tree edge.
* ``shortest_paths`` / ``seeded_shortest_paths``: the weighted
  tie-broken Dijkstra.  The csr engine runs the random weight scheme on
  the array kernels of :mod:`repro.engine.weighted_kernels` (the
  composite weight splits into an ``int64`` ``(hops, pert_sum)`` pair);
  the exact scheme's big-int perturbations transparently fall back to
  the shared reference implementation.  Each engine reports its
  weighted capability via ``weighted_backend`` (shown by
  ``repro engines``).
* ``weighted_failure_sweep`` / ``batched_shortest_paths`` /
  ``batched_seeded_shortest_paths``: the batched replacement subsystem -
  replacement distances for *all* tree-edge failures, and many
  independent (seeded) weighted traversals, in one amortized pass.  The
  reference implementations are the per-call loops; the csr engine
  stacks the runs into shared per-level kernels, and the sharded engine
  fans the weighted sweep over worker processes.  Reported via
  ``replacement_backend`` / ``detour_backend``.

Built-in engines
----------------
``"python"``
    The executable specification (pure-Python loops).
``"csr"``
    Frontier-based numpy kernels over a CSR view cached on the graph;
    registered only when numpy imports.  Default when present.
``"sharded"``
    Process-sharded ``failure_sweep`` over a single-process base engine
    (:mod:`repro.engine.sharded`); bit-identical to the base, used for
    large graphs and never the implicit default.  Shard inputs travel
    through the shared-memory graph plane (:mod:`repro.engine.shm`):
    the CSR view / weights / tree arrays are published once per graph or
    tree, each sweep adds tiny request and base-state segments, and
    workers attach zero-copy, with a pickle fallback when shared
    memory or numpy is unavailable.  Engines report their transport
    via ``transport`` (shown by ``repro engines``, along with their
    ``threads`` budget and published ``plane_segments``).
``"csr-mt"``
    Thread-parallel ``failure_sweep`` windows over the csr kernels
    inside one process (:mod:`repro.engine.threaded`); zero-copy by
    construction - no pickling or shared-memory segments at all - and
    bit-identical to csr.  Registered only when numpy imports (the
    kernels' GIL-releasing array passes are what make threads pay);
    never the implicit default.  Its base engine is pluggable and
    prefers ``csr-c`` when registered, so thread windows run the
    compiled kernels for free.
``"csr-c"``
    The csr engine with the traversal hot paths - the sweep hot pair
    (ordered base BFS + Euler walk, per-failure subtree recompute) and
    the weighted ``(hops, pert_sum)`` stacked relaxation behind
    ``run_pcons``, the weighted failure sweep, and the batched
    shortest-path primitives - compiled to C flat loops over the same
    cached CSR arrays (:mod:`repro.engine.compiled`).  Exact-scheme
    weighted runs keep the big-int reference path (their perturbations
    are not int64-representable), and the reference's order-dependent
    tie events bail back to the numpy replay - same exceptions, same
    messages.  ``_ckernels.c`` is compiled once
    on demand by the system compiler into a hash-keyed cache
    (:mod:`repro.engine.cbuild`) and loaded via ctypes; registered only
    when numpy *and* a C compiler are present (``REPRO_CC=0`` gates it
    out), never the implicit default, bit-identical by the same parity
    suites.  Each engine reports its toolchain via ``compiler`` (shown
    by ``repro engines``).

Selection
---------
Explicit ``engine=`` keyword > :func:`engine_context` /
:func:`set_default_engine` > the ``REPRO_ENGINE`` environment variable >
``"csr"`` if available else ``"python"``.  The CLI exposes the same
choice as ``repro engines`` and ``--engine {python,csr,...}``; parallel
sweep workers honor :class:`repro.harness.parallel.SweepTask.engine`.
"""

from repro.engine.base import (
    UNREACHABLE,
    ReplacementSweepItem,
    SweepHandle,
    TraversalEngine,
    distances_equal,
    num_unreachable,
    replacement_failure,
)
from repro.engine.registry import (
    ENGINE_ENV_VAR,
    available_engines,
    default_engine_name,
    engine_context,
    get_engine,
    register_engine,
    set_default_engine,
)
from repro.engine.sharded import ShardedEngine
from repro.engine.threaded import ThreadedEngine

__all__ = [
    "ShardedEngine",
    "ThreadedEngine",
    "UNREACHABLE",
    "ReplacementSweepItem",
    "SweepHandle",
    "TraversalEngine",
    "distances_equal",
    "num_unreachable",
    "replacement_failure",
    "ENGINE_ENV_VAR",
    "available_engines",
    "default_engine_name",
    "engine_context",
    "get_engine",
    "register_engine",
    "set_default_engine",
]

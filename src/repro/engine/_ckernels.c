/* Flat-loop C implementations of the traversal hot paths: the sweep
 * hot pair (ordered BFS + Euler-interval subtree recompute) and the
 * weighted (hops, pert_sum) level relaxation.
 *
 * Compiled on demand by repro.engine.cbuild with the system C compiler
 * and loaded through ctypes; repro/engine/compiled.py is the only
 * caller.  Every function operates on the caller's cached CSR arrays
 * (int64 offsets/ids, uint8 masks, passed as raw pointers) and writes
 * into caller-allocated int64 outputs, so the Python side stays
 * allocation-compatible with the numpy kernels it replaces.  Nothing
 * here touches the Python API: ctypes releases the GIL around every
 * call, which is what lets the csr-mt engine window these kernels
 * across genuinely concurrent threads.
 *
 * Bit-identity with repro/engine/kernels.py (the acceptance bar):
 *
 * - The BFS dequeues in discovery order and walks each vertex's
 *   neighbors in CSR order (= the graph's adjacency-list order), so
 *   the first discoverer of a vertex - its parent - and the per-level
 *   dequeue order match the reference deque BFS exactly.  numpy's
 *   per-level unique(return_index) + stable argsort picks the same
 *   first discoverer from the same stream.
 * - The Euler walk replays FailureSweep._euler verbatim: children
 *   grouped per parent in BFS-discovery order, an iterative DFS with
 *   children pushed in reverse, tin/preorder stamped on entry and
 *   tout on exit.
 * - The subtree recompute settles levels in increasing order; its
 *   output is a distance vector (order-free values), identical to the
 *   numpy multi-level-seeded BFS by the same unit-weight argument.
 *
 * Bit-identity with repro/engine/weighted_kernels.py:
 *
 * - The weighted relaxation settles each hop level in (pert, vertex)
 *   order - the reference heap's pop order - and relaxes each settled
 *   vertex's out-edges in CSR order, so candidates arrive per target
 *   in exactly the reference's arrival order.  A direct running-min
 *   per target therefore reproduces the reference's order-dependent
 *   state verbatim; the numpy path's lexsort-group machinery and its
 *   duplicate replay are vectorization workarounds for the same
 *   sequential semantics, not extra behavior.
 * - The order-dependent tie event - a candidate equal to the target's
 *   current running minimum through a different edge - is detected
 *   exactly (not over-approximated): the kernel bails out and the
 *   caller reruns the traversal on the numpy path, which raises the
 *   reference's TieBreakError with the reference's message.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define UNREACHABLE (-1)

/* Queue BFS; the queue array doubles as the discovery order.  Any of
 * edge_ok (uint8 per edge id), vertex_ok (uint8 per vertex), parent,
 * and parent_eid may be NULL.  dist and order must be length n; dist
 * is fully initialized (unreached = -1), order only up to the return
 * value.  Returns the number of visited vertices. */
static int64_t bfs_core(
    int64_t n,
    const int64_t *indptr,
    const int64_t *indices,
    const int64_t *edge_ids,
    int64_t source,
    const uint8_t *edge_ok,
    const uint8_t *vertex_ok,
    int64_t *dist,
    int64_t *parent,
    int64_t *parent_eid,
    int64_t *order)
{
    for (int64_t v = 0; v < n; v++) {
        dist[v] = UNREACHABLE;
        if (parent) parent[v] = -1;
        if (parent_eid) parent_eid[v] = -1;
    }
    if (vertex_ok && !vertex_ok[source])
        return 0;
    dist[source] = 0;
    if (parent) parent[source] = source;
    order[0] = source;
    int64_t head = 0, tail = 1;
    while (head < tail) {
        int64_t v = order[head++];
        int64_t dv = dist[v];
        for (int64_t k = indptr[v]; k < indptr[v + 1]; k++) {
            int64_t w = indices[k];
            if (dist[w] != UNREACHABLE) continue;
            if (edge_ok && !edge_ok[edge_ids[k]]) continue;
            if (vertex_ok && !vertex_ok[w]) continue;
            dist[w] = dv + 1;
            if (parent) parent[w] = v;
            if (parent_eid) parent_eid[w] = edge_ids[k];
            order[tail++] = w;
        }
    }
    return tail;
}

/* bfs_levels / bfs_levels_ordered equivalent (see bfs_core for the
 * NULL-able arguments and outputs). */
int64_t repro_bfs_order(
    int64_t n,
    const int64_t *indptr,
    const int64_t *indices,
    const int64_t *edge_ids,
    int64_t source,
    const uint8_t *edge_ok,
    const uint8_t *vertex_ok,
    int64_t *dist,
    int64_t *parent,
    int64_t *parent_eid,
    int64_t *order)
{
    return bfs_core(n, indptr, indices, edge_ids, source,
                    edge_ok, vertex_ok, dist, parent, parent_eid, order);
}

/* The FailureSweep base state in one call: ordered BFS plus the Euler
 * walk of the resulting tree.  All outputs are length-n int64 arrays;
 * unreached vertices keep tin = tout = -1 and preorder is meaningful
 * only up to the returned visited count.  Returns the visited count,
 * or -1 on allocation failure (the caller falls back to numpy). */
int64_t repro_bfs_euler(
    int64_t n,
    const int64_t *indptr,
    const int64_t *indices,
    const int64_t *edge_ids,
    int64_t source,
    const uint8_t *edge_ok,
    int64_t *dist,
    int64_t *parent,
    int64_t *parent_eid,
    int64_t *order,
    int64_t *tin,
    int64_t *tout,
    int64_t *preorder)
{
    int64_t visited = bfs_core(n, indptr, indices, edge_ids, source,
                               edge_ok, NULL, dist, parent, parent_eid,
                               order);
    for (int64_t v = 0; v < n; v++)
        tin[v] = tout[v] = -1;

    /* Children of each parent in BFS-discovery order, via a counting
     * sort over parent[] along `order` (the discovery sequence). */
    int64_t *cnt = calloc((size_t)(n + 1), sizeof(int64_t));
    int64_t *kids = malloc((size_t)(visited > 0 ? visited : 1) * sizeof(int64_t));
    int64_t *stack = malloc((size_t)(2 * visited + 1) * sizeof(int64_t));
    if (!cnt || !kids || !stack) {
        free(cnt); free(kids); free(stack);
        return -1;
    }
    for (int64_t i = 1; i < visited; i++)  /* skip the source (own parent) */
        cnt[parent[order[i]] + 1]++;
    for (int64_t v = 0; v < n; v++)
        cnt[v + 1] += cnt[v];               /* cnt[v] = offset of v's kids */
    int64_t *fill = malloc((size_t)n * sizeof(int64_t));
    if (!fill) {
        free(cnt); free(kids); free(stack);
        return -1;
    }
    memcpy(fill, cnt, (size_t)n * sizeof(int64_t));
    for (int64_t i = 1; i < visited; i++) {
        int64_t v = order[i];
        kids[fill[parent[v]]++] = v;
    }

    /* Iterative DFS, children pushed reversed so the leftmost (first
     * discovered) child is visited first.  Stack encodes "enter v" as
     * v + 1 and "exit v" as -(v + 1). */
    int64_t clock = 0;
    int64_t sp = 0;
    stack[sp++] = source + 1;
    while (sp > 0) {
        int64_t item = stack[--sp];
        if (item < 0) {
            tout[-item - 1] = clock;
            continue;
        }
        int64_t v = item - 1;
        tin[v] = clock;
        preorder[clock] = v;
        clock++;
        stack[sp++] = -(v + 1);
        for (int64_t k = cnt[v + 1] - 1; k >= cnt[v]; k--)
            stack[sp++] = kids[k] + 1;
    }
    free(cnt); free(kids); free(stack); free(fill);
    return visited;
}

static int cmp_int64(const void *a, const void *b)
{
    int64_t x = *(const int64_t *)a, y = *(const int64_t *)b;
    return (x > y) - (x < y);
}

/* FailureSweep._recompute_subtree: hop distances after failing tree
 * edge `failed_eid` whose deeper endpoint's Euler interval is
 * [tin_c, tout_c).  `out` (length n) receives the full new distance
 * vector; `base`, `tin`, `preorder` are the sweep's base state.
 * Returns 0, or -1 on allocation failure (caller falls back). */
int64_t repro_recompute_subtree(
    int64_t n,
    const int64_t *indptr,
    const int64_t *indices,
    const int64_t *edge_ids,
    const uint8_t *edge_ok,
    int64_t failed_eid,
    const int64_t *tin,
    int64_t tin_c,
    int64_t tout_c,
    const int64_t *preorder,
    const int64_t *base,
    int64_t *out)
{
    const int64_t INF = INT64_MAX;
    int64_t sub_size = tout_c - tin_c;
    const int64_t *sub = preorder + tin_c;
    memcpy(out, base, (size_t)n * sizeof(int64_t));
    if (sub_size <= 0)
        return 0;

    int64_t *tent = malloc((size_t)sub_size * sizeof(int64_t));
    int64_t *keys = malloc((size_t)sub_size * sizeof(int64_t));
    int64_t *act = malloc((size_t)sub_size * sizeof(int64_t));
    int64_t *fr = malloc((size_t)sub_size * sizeof(int64_t));
    int64_t *nx = malloc((size_t)sub_size * sizeof(int64_t));
    if (!tent || !keys || !act || !fr || !nx) {
        free(tent); free(keys); free(act); free(fr); free(nx);
        return -1;
    }
    for (int64_t i = 0; i < sub_size; i++) {
        out[sub[i]] = UNREACHABLE;
        tent[i] = INF;
    }

    /* Crossing-edge seeds: every surviving path into the subtree last
     * enters through an edge (w, v) with w outside the interval;
     * outside distances are unchanged, so v is seeded at base[w] + 1.
     * Local subtree index of v = tin[v] - tin_c (preorder positions). */
    for (int64_t i = 0; i < sub_size; i++) {
        int64_t v = sub[i];
        for (int64_t k = indptr[v]; k < indptr[v + 1]; k++) {
            int64_t e = edge_ids[k];
            if (e == failed_eid) continue;
            if (edge_ok && !edge_ok[e]) continue;
            int64_t tw = tin[indices[k]];
            if (tw >= tin_c && tw < tout_c) continue;  /* internal edge */
            int64_t bw = base[indices[k]];
            if (bw == UNREACHABLE) continue;           /* dead outside end */
            if (bw + 1 < tent[i]) tent[i] = bw + 1;
        }
    }
    int64_t nseeds = 0;
    for (int64_t i = 0; i < sub_size; i++)
        if (tent[i] != INF)
            keys[nseeds++] = tent[i] * (n + 1) + i;  /* (level, index) packed */
    qsort(keys, (size_t)nseeds, sizeof(int64_t), cmp_int64);

    /* Settle levels in increasing order: each round merges the seeds of
     * the round's level with the relaxation frontier carried over from
     * the previous round (whenever the frontier is non-empty its level
     * is <= every remaining seed level, so it is always consumed). */
    int64_t sp = 0;          /* next unconsumed seed */
    int64_t flen = 0;        /* relaxation frontier size ... */
    int64_t flevel = 0;      /* ... and its level */
    while (sp < nseeds || flen > 0) {
        int64_t lvl;
        if (flen > 0)
            lvl = flevel;
        else
            lvl = keys[sp] / (n + 1);
        if (sp < nseeds) {
            int64_t slvl = keys[sp] / (n + 1);
            if (slvl < lvl) lvl = slvl;
        }
        int64_t alen = 0;
        while (sp < nseeds && keys[sp] / (n + 1) == lvl) {
            int64_t i = keys[sp] % (n + 1);
            sp++;
            if (out[sub[i]] == UNREACHABLE && tent[i] == lvl) {
                out[sub[i]] = lvl;
                act[alen++] = i;
            }
        }
        if (flen > 0 && flevel == lvl) {
            for (int64_t j = 0; j < flen; j++) {
                int64_t i = fr[j];
                if (out[sub[i]] == UNREACHABLE && tent[i] == lvl) {
                    out[sub[i]] = lvl;
                    act[alen++] = i;
                }
            }
            flen = 0;
        }
        int64_t nlen = 0;
        for (int64_t j = 0; j < alen; j++) {
            int64_t v = sub[act[j]];
            for (int64_t k = indptr[v]; k < indptr[v + 1]; k++) {
                int64_t e = edge_ids[k];
                if (e == failed_eid) continue;
                if (edge_ok && !edge_ok[e]) continue;
                int64_t w = indices[k];
                int64_t tw = tin[w];
                if (tw < tin_c || tw >= tout_c) continue;  /* outside */
                if (out[w] != UNREACHABLE) continue;       /* settled */
                int64_t iw = tw - tin_c;
                if (tent[iw] > lvl + 1) {
                    tent[iw] = lvl + 1;   /* also dedupes within nx */
                    nx[nlen++] = iw;
                }
            }
        }
        int64_t *tmp = fr; fr = nx; nx = tmp;
        flen = nlen;
        flevel = lvl + 1;
    }
    free(tent); free(keys); free(act); free(fr); free(nx);
    return 0;
}

/* A settling vertex: sorted by (pert, id), the reference heap's pop
 * order.  Stacked layers keep this exact within a level too - layer
 * offsets are multiples of n_base, so global-id order within a layer
 * equals local-id order. */
typedef struct {
    int64_t pert;
    int64_t id;
} wl_entry;

static int cmp_wl_entry(const void *a, const void *b)
{
    const wl_entry *x = (const wl_entry *)a;
    const wl_entry *y = (const wl_entry *)b;
    if (x->pert != y->pert)
        return (x->pert > y->pert) - (x->pert < y->pert);
    return (x->id > y->id) - (x->id < y->id);
}

/* weighted_levels equivalent: seed intake plus the level-synchronous
 * two-array (hops, pert_sum) relaxation over n_total = B * n_base
 * stacked layers (pass n_total == n_base for a plain single-layer
 * run).  Seeds arrive as raw columns in the reference's arrival order
 * and go through the reference's sequential running-min intake: a
 * strictly smaller (hop, pert) label overwrites, equality through a
 * different entry edge is the reference's seed tie (bail, see below),
 * and a seed outside the allowed set - or out of array range entirely -
 * bails before touching anything.  The surviving per-vertex labels,
 * sorted by (hop, id), form the drain schedule: each level merges due
 * schedule entries with the carried relaxation frontier, drops entries
 * whose label moved on (settled, or hop_t no longer equal to the
 * level - the bucket drain's filter), settles the survivors in
 * (pert, id) order, and streams their out-edges through the ban/allow
 * filters.  banned_eid (optional, length B) drops layer b's one banned
 * edge id, exactly like the stacked expander.
 *
 * Targets holding a tentative next-level label (seed incumbents) keep
 * the reference's running-min semantics: strict improvement overwrites
 * (first arrival among equals wins and is never displaced), equality
 * through a different edge is the reference's tie event.
 *
 * Returns 0 on completion; on any bail-out the caller resets and
 * reruns the traversal on the numpy path, which reproduces the
 * reference's outcome - the tie/validation error with its message, or
 * (bail_on_dup unset) the tie-ignoring result: 1 = relaxation tie
 * (only raised with bail_on_dup), 2 = seed tie or invalid seed, -1 =
 * allocation failure.  State may be left mid-run on 1/-1; 2 happens
 * before any relaxation but after some intake writes (all within the
 * allowed positions). */
int64_t repro_weighted_levels(
    int64_t n_total,
    int64_t n_base,
    const int64_t *indptr,
    const int64_t *indices,
    const int64_t *edge_ids,
    const int64_t *pert_edge,
    const uint8_t *edge_ok,
    const uint8_t *vertex_ok,
    const uint8_t *allowed_ok,
    const int64_t *banned_eid,
    int64_t nseeds,
    const int64_t *seed_hop,
    const int64_t *seed_pert,
    const int64_t *seed_vertex,
    const int64_t *seed_parent,
    const int64_t *seed_parent_eid,
    int64_t bail_on_dup,
    uint8_t *settled,
    int64_t *hop_t,
    int64_t *pert_t,
    int64_t *parent,
    int64_t *parent_eid)
{
    if (nseeds <= 0)
        return 0;
    wl_entry *sched = malloc((size_t)nseeds * sizeof(wl_entry));
    wl_entry *act = malloc((size_t)n_total * sizeof(wl_entry));
    int64_t *fr = malloc((size_t)n_total * sizeof(int64_t));
    int64_t *nx = malloc((size_t)n_total * sizeof(int64_t));
    if (!sched || !act || !fr || !nx) {
        free(sched); free(act); free(fr); free(nx);
        return -1;
    }
    int64_t rc = 0;

    /* Intake.  First-touch detection rides on the entry contract that
     * hop_t is -1 at every position this run may label. */
    int64_t nsched = 0;
    for (int64_t j = 0; j < nseeds; j++) {
        int64_t v = seed_vertex[j];
        if (v < 0 || v >= n_total || (allowed_ok && !allowed_ok[v])) {
            rc = 2;
            break;
        }
        int64_t h0 = seed_hop[j], p0 = seed_pert[j];
        int64_t ch = hop_t[v];
        if (ch == -1 || h0 < ch || (h0 == ch && p0 < pert_t[v])) {
            if (ch == -1)
                sched[nsched++].id = v;  /* hop key assigned post-intake */
            hop_t[v] = h0;
            pert_t[v] = p0;
            parent[v] = seed_parent[j];
            parent_eid[v] = seed_parent_eid[j];
        } else if (h0 == ch && p0 == pert_t[v] &&
                   seed_parent_eid[j] != parent_eid[v]) {
            rc = 2;  /* the reference's seed tie (raise or not: rerun) */
            break;
        }
    }
    if (rc != 0) {
        free(sched); free(act); free(fr); free(nx);
        return rc;
    }
    for (int64_t j = 0; j < nsched; j++)
        sched[j].pert = hop_t[sched[j].id];  /* final label's hop */
    qsort(sched, (size_t)nsched, sizeof(wl_entry), cmp_wl_entry);

    int64_t sp = 0;          /* next unconsumed schedule entry */
    int64_t flen = 0;        /* carried relaxation frontier size ... */
    int64_t flevel = 0;      /* ... and its level */
    while (sp < nsched || flen > 0) {
        int64_t lvl;
        if (flen > 0)
            lvl = flevel;
        else
            lvl = sched[sp].pert;
        if (sp < nsched && sched[sp].pert < lvl)
            lvl = sched[sp].pert;
        int64_t alen = 0;
        while (sp < nsched && sched[sp].pert == lvl) {
            int64_t v = sched[sp++].id;
            if (!settled[v] && hop_t[v] == lvl) {
                settled[v] = 1;
                act[alen].pert = pert_t[v];
                act[alen].id = v;
                alen++;
            }
        }
        if (flen > 0 && flevel == lvl) {
            for (int64_t j = 0; j < flen; j++) {
                int64_t v = fr[j];
                if (!settled[v] && hop_t[v] == lvl) {
                    settled[v] = 1;
                    act[alen].pert = pert_t[v];
                    act[alen].id = v;
                    alen++;
                }
            }
            flen = 0;
        }
        qsort(act, (size_t)alen, sizeof(wl_entry), cmp_wl_entry);
        int64_t nlen = 0;
        for (int64_t j = 0; j < alen && rc == 0; j++) {
            int64_t v = act[j].id;
            int64_t local = v % n_base;
            int64_t off = v - local;
            int64_t ban = banned_eid ? banned_eid[v / n_base] : -1;
            int64_t pv = pert_t[v];
            for (int64_t k = indptr[local]; k < indptr[local + 1]; k++) {
                int64_t e = edge_ids[k];
                if (e == ban) continue;
                if (edge_ok && !edge_ok[e]) continue;
                int64_t w = indices[k] + off;
                if (settled[w]) continue;
                if (vertex_ok && !vertex_ok[w]) continue;
                if (allowed_ok && !allowed_ok[w]) continue;
                int64_t c = pv + pert_edge[e];
                if (hop_t[w] == lvl + 1) {
                    /* Running next-level label (a seed incumbent or an
                     * earlier arrival this level - both won every
                     * comparison so far). */
                    if (c < pert_t[w]) {
                        pert_t[w] = c;
                        parent[w] = v;
                        parent_eid[w] = e;
                    } else if (c == pert_t[w] && parent_eid[w] != e &&
                               bail_on_dup) {
                        rc = 1;
                        break;
                    }
                } else {
                    /* First touch this level; a stale label from a
                     * higher hop (never settled, never comparable) is
                     * plainly overwritten, like any unlabeled target. */
                    hop_t[w] = lvl + 1;
                    pert_t[w] = c;
                    parent[w] = v;
                    parent_eid[w] = e;
                    nx[nlen++] = w;
                }
            }
        }
        if (rc != 0)
            break;
        int64_t *tmp = fr; fr = nx; nx = tmp;
        flen = nlen;
        flevel = lvl + 1;
    }
    free(sched); free(act); free(fr); free(nx);
    return rc;
}

"""Array kernels for the weighted tie-broken traversal (random scheme).

The composite weights of :mod:`repro.spt.weights` encode the
lexicographic pair ``(hops, pert_sum)`` in one big integer
``(hops << shift) + pert_sum``.  The pair itself is array-representable:
``hops`` is a small integer, and under the random scheme any simple
path's perturbation sum stays below ``2**19 * 2**44 < 2**63`` - so the
kernel keeps the two components in *separate* ``int64`` arrays and never
materializes the overflowing composite until the final result assembly.

Because every edge raises the hop component by exactly one, the heap of
the reference Dijkstra settles vertices level by level: all labels of
hop level ``h`` are final before the first level-``h`` vertex settles.
The kernel therefore runs a **level-synchronous two-array relaxation**:
settle a whole hop level at once (ordered by ``(pert, vertex)``, the
reference heap's pop order), stream its out-edges in that order, and
reduce the candidate perturbations per target.

Tie detection must be *bit-identical in behavior* to the reference,
which raises :class:`~repro.errors.TieBreakError` the moment a
relaxation candidate equals the target's current running minimum - an
order-dependent event (candidates ``10, 10, 5`` tie on the second
``10`` even though the final minimum ``5`` is unique).  The kernel
reproduces this exactly: targets whose candidate multiset contains any
duplicate perturbation (the only way an equality event can occur) are
replayed through the reference's relaxation loop in arrival order; all
other targets take the fully vectorized argmin path.

Entry conditions are checked by :func:`weighted_plan`: the kernel runs
only when the per-edge perturbations export to ``int64``
(:meth:`~repro.spt.weights.WeightAssignment.pert_array`) and no path or
seed can overflow either the perturbation field (``2**shift``, which
would carry into the hop bits of the reference's big-int sum) or
``int64``.  Everything else - the exact scheme in particular - falls
back to the big-int reference Dijkstra.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.engine.csr import CSRAdjacency
from repro.engine.kernels import expand_frontier
from repro.errors import GraphError, TieBreakError
from repro.spt.result import ShortestPathResult
from repro.spt.weights import RANDOM, WeightAssignment

__all__ = ["weighted_plan", "weighted_levels", "assemble_result", "decompose_seeds"]

#: Seed tuple consumed by :func:`weighted_levels`:
#: ``(hop, pert, vertex, parent, parent_eid)``.
Seed = Tuple[int, int, int, int, int]

_INT64_LIMIT = 2**63


def weighted_plan(
    graph, weights: WeightAssignment, *, max_seed_pert: int = 0
) -> Optional[np.ndarray]:
    """The per-edge ``int64`` perturbation array, or ``None`` to fall back.

    ``None`` means the array kernel cannot *provably* reproduce the
    reference: non-random scheme, perturbations that do not fit
    ``int64``, or a graph large enough that a path's perturbation sum
    (plus the largest seed perturbation) could overflow the
    perturbation field ``2**shift`` or ``int64``.
    """
    if weights.scheme != RANDOM:
        return None
    export = weights.pert_array()
    if export is None:
        return None
    perts, max_pert = export
    n = graph.num_vertices
    bound = max_seed_pert + max(0, n - 1) * max_pert
    if bound >= min(weights.big, _INT64_LIMIT):
        return None
    return perts


def decompose_seeds(
    seeds: Iterable[Tuple[int, int, int, int]], shift: int
) -> List[Seed]:
    """Split reference seeds ``(dist, v, parent, parent_eid)`` into
    ``(hop, pert, v, parent, parent_eid)`` pairs."""
    mask = (1 << shift) - 1
    return [(d0 >> shift, d0 & mask, v0, p0, pe0) for d0, v0, p0, pe0 in seeds]


def weighted_levels(
    csr: CSRAdjacency,
    pert_edge: np.ndarray,
    seeds: List[Seed],
    *,
    edge_ok: Optional[np.ndarray] = None,
    vertex_ok: Optional[np.ndarray] = None,
    allowed_ok: Optional[np.ndarray] = None,
    raise_on_tie: bool = True,
    scheme: str = RANDOM,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Level-synchronous weighted traversal over the CSR view.

    Returns ``(settled, hop, pert, parent, parent_eid)``; ``settled``
    marks reached vertices, whose composite distance is the pair
    ``(hop, pert)``.  ``allowed_ok`` (when given) restricts settling to
    a vertex subset and makes the seed loop validate membership, exactly
    like the reference's ``allowed_vertices``.
    """
    n = csr.num_vertices
    hop_t = np.full(n, -1, dtype=np.int64)
    pert_t = np.zeros(n, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    parent_eid = np.full(n, -1, dtype=np.int64)
    settled = np.zeros(n, dtype=bool)

    # Pending labels bucketed by hop level; stale entries (labels later
    # improved to a lower level, or already settled) are filtered out
    # when their bucket is drained, so duplicates are harmless.
    buckets: dict = {}

    # Seed loop: sequential, replicating the reference's running-min and
    # tie semantics entry by entry.
    for h0, p0, v0, par0, pe0 in seeds:
        if allowed_ok is not None and not (0 <= v0 < n and allowed_ok[v0]):
            raise GraphError(f"seed vertex {v0} outside the allowed set")
        cur_h = int(hop_t[v0])
        if cur_h == -1 or (h0, p0) < (cur_h, int(pert_t[v0])):
            hop_t[v0] = h0
            pert_t[v0] = p0
            parent[v0] = par0
            parent_eid[v0] = pe0
            buckets.setdefault(h0, []).append(np.asarray([v0], dtype=np.int64))
        elif (h0, p0) == (cur_h, int(pert_t[v0])) and pe0 != parent_eid[v0]:
            if raise_on_tie:
                raise TieBreakError(
                    f"equal-weight seeds for vertex {v0} (scheme={scheme})"
                )
    seed_vertices = np.asarray(sorted({s[2] for s in seeds}), dtype=np.int64)

    while buckets:
        h = min(buckets)
        cand_vertices = np.concatenate(buckets.pop(h))
        frontier = np.unique(cand_vertices)
        frontier = frontier[~settled[frontier] & (hop_t[frontier] == h)]
        if frontier.size == 0:
            continue
        # Settle order = the reference heap's pop order: (pert, vertex).
        # unique() yields ascending ids; a stable sort by pert keeps id
        # order inside equal perturbations.
        frontier = frontier[np.argsort(pert_t[frontier], kind="stable")]
        settled[frontier] = True

        srcs, nbrs, eids = expand_frontier(csr, frontier)
        keep = ~settled[nbrs]
        if edge_ok is not None:
            keep &= edge_ok[eids]
        if vertex_ok is not None:
            keep &= vertex_ok[nbrs]
        if allowed_ok is not None:
            keep &= allowed_ok[nbrs]
        srcs, nbrs, eids = srcs[keep], nbrs[keep], eids[keep]
        if nbrs.size == 0:
            continue
        cand = pert_t[srcs] + pert_edge[eids]

        # Targets already holding a tentative hop-(h+1) label: the
        # reference compares every relaxation against it, so it joins
        # each target's stream as the leading pseudo-candidate.  Such
        # labels can only stem from seeds (this level's own updates are
        # not yet applied), so the machinery is skipped entirely once
        # every seed vertex has settled - in particular always for
        # single-source runs.
        if seed_vertices.size and not settled[seed_vertices].all():
            init_targets = np.unique(nbrs[hop_t[nbrs] == h + 1])
        else:
            init_targets = np.empty(0, dtype=np.int64)
        if init_targets.size:
            t_all = np.concatenate([init_targets, nbrs])
            c_all = np.concatenate([pert_t[init_targets], cand])
            s_all = np.concatenate([parent[init_targets], srcs])
            e_all = np.concatenate([parent_eid[init_targets], eids])
        else:
            t_all, c_all, s_all, e_all = nbrs, cand, srcs, eids

        # Group by target, preserving arrival order within each group
        # (inits were prepended, so they stay first).
        order = np.argsort(t_all, kind="stable")
        t_s, c_s, s_s, e_s = t_all[order], c_all[order], s_all[order], e_all[order]
        change = np.empty(t_s.size, dtype=bool)
        change[0] = True
        np.not_equal(t_s[1:], t_s[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        counts = np.diff(starts, append=t_s.size)
        grp_target = t_s[starts]

        gmin = np.minimum.reduceat(c_s, starts)
        is_min = c_s == np.repeat(gmin, counts)
        pos = np.where(is_min, np.arange(t_s.size), t_s.size)
        win = np.minimum.reduceat(pos, starts)

        # Any duplicated perturbation inside a group is the only way an
        # equality event can occur; those rare groups are replayed
        # through the reference loop below, everything else is decided
        # by the vectorized argmin.
        if np.count_nonzero(is_min) > starts.size:
            dup_candidates = True  # a group's minimum is attained twice
        else:
            # equal values above a group's running minimum also tie in
            # the reference; detect any duplicated (target, value) pair
            ord2 = np.lexsort((c_s, t_s))
            cc = c_s[ord2]
            tt = t_s[ord2]
            dup_candidates = bool(
                ((tt[1:] == tt[:-1]) & (cc[1:] == cc[:-1])).any()
            )

        if dup_candidates:
            ord2 = np.lexsort((c_s, t_s))
            tt, cc = t_s[ord2], c_s[ord2]
            dup_adj = (tt[1:] == tt[:-1]) & (cc[1:] == cc[:-1])
            dup_flag = np.zeros(n, dtype=bool)
            dup_flag[tt[1:][dup_adj]] = True
            grp_dup = dup_flag[grp_target]
            has_init = (
                hop_t[grp_target] == h + 1
                if init_targets.size
                else np.zeros(starts.size, dtype=bool)
            )
            winner_is_init = (win == starts) & has_init
            upd = ~grp_dup & ~winner_is_init
            tg, wi = grp_target[upd], win[upd]
            hop_t[tg] = h + 1
            pert_t[tg] = c_s[wi]
            parent[tg] = s_s[wi]
            parent_eid[tg] = e_s[wi]
            _replay_duplicates(
                np.flatnonzero(grp_dup), starts, counts, has_init,
                t_s, c_s, s_s, e_s, h, hop_t, pert_t, parent, parent_eid,
                raise_on_tie, scheme,
            )
            pushed = grp_target
        elif init_targets.size:
            has_init = hop_t[grp_target] == h + 1
            winner_is_init = (win == starts) & has_init
            upd = ~winner_is_init
            tg, wi = grp_target[upd], win[upd]
            hop_t[tg] = h + 1
            pert_t[tg] = c_s[wi]
            parent[tg] = s_s[wi]
            parent_eid[tg] = e_s[wi]
            pushed = tg
        else:
            hop_t[grp_target] = h + 1
            pert_t[grp_target] = c_s[win]
            parent[grp_target] = s_s[win]
            parent_eid[grp_target] = e_s[win]
            pushed = grp_target
        if pushed.size:
            buckets.setdefault(h + 1, []).append(pushed)

    return settled, hop_t, pert_t, parent, parent_eid


def _replay_duplicates(
    groups: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    has_init: np.ndarray,
    t_s: np.ndarray,
    c_s: np.ndarray,
    s_s: np.ndarray,
    e_s: np.ndarray,
    h: int,
    hop_t: np.ndarray,
    pert_t: np.ndarray,
    parent: np.ndarray,
    parent_eid: np.ndarray,
    raise_on_tie: bool,
    scheme: str,
) -> None:
    """Reference relaxation loop for targets with duplicated candidates.

    Replays candidates in arrival order: strict improvement moves the
    running minimum, equality against it with a different edge is the
    reference's tie (raised in level order, matching the settle order
    the reference would have raised in).
    """
    for g in groups.tolist():
        lo = int(starts[g])
        hi = lo + int(counts[g])
        target = int(t_s[lo])
        run_c = run_s = run_e = None
        win_j = -1
        for j in range(lo, hi):
            c = int(c_s[j])
            if run_c is None or c < run_c:
                run_c, run_s, run_e = c, int(s_s[j]), int(e_s[j])
                win_j = j
            elif c == run_c and int(e_s[j]) != run_e:
                if raise_on_tie:
                    raise TieBreakError(
                        f"equal-weight paths to vertex {target} (scheme={scheme})"
                    )
        if has_init[g] and win_j == lo:
            continue  # the pre-existing label survives unchanged
        hop_t[target] = h + 1
        pert_t[target] = run_c
        parent[target] = run_s
        parent_eid[target] = run_e


def assemble_result(
    source: int,
    shift: int,
    settled: np.ndarray,
    hop: np.ndarray,
    pert: np.ndarray,
    parent: np.ndarray,
    parent_eid: np.ndarray,
) -> ShortestPathResult:
    """Recompose ``(hop, pert)`` pairs into the reference's big-int form.

    The composite ``hop << shift`` overflows ``int64`` (shift is 63 for
    the random scheme), so the final distances are built as Python ints;
    they are bit-identical to the reference's weight sums because the
    plan guaranteed perturbation sums never carry into the hop bits.
    """
    if settled.all():
        dist: List[Optional[int]] = [
            (h << shift) + p for h, p in zip(hop.tolist(), pert.tolist())
        ]
    else:
        dist = [
            (h << shift) + p if ok else None
            for ok, h, p in zip(settled.tolist(), hop.tolist(), pert.tolist())
        ]
    return ShortestPathResult(
        source=source,
        dist=dist,
        parent=parent.tolist(),
        parent_eid=parent_eid.tolist(),
    )

"""Array kernels for the weighted tie-broken traversal (random scheme).

The composite weights of :mod:`repro.spt.weights` encode the
lexicographic pair ``(hops, pert_sum)`` in one big integer
``(hops << shift) + pert_sum``.  The pair itself is array-representable:
``hops`` is a small integer, and under the random scheme any simple
path's perturbation sum stays below ``2**19 * 2**44 < 2**63`` - so the
kernel keeps the two components in *separate* ``int64`` arrays and never
materializes the overflowing composite until the final result assembly.

Because every edge raises the hop component by exactly one, the heap of
the reference Dijkstra settles vertices level by level: all labels of
hop level ``h`` are final before the first level-``h`` vertex settles.
The kernel therefore runs a **level-synchronous two-array relaxation**:
settle a whole hop level at once (ordered by ``(pert, vertex)``, the
reference heap's pop order), stream its out-edges in that order, and
reduce the candidate perturbations per target.

Tie detection must be *bit-identical in behavior* to the reference,
which raises :class:`~repro.errors.TieBreakError` the moment a
relaxation candidate equals the target's current running minimum - an
order-dependent event (candidates ``10, 10, 5`` tie on the second
``10`` even though the final minimum ``5`` is unique).  The kernel
reproduces this exactly: targets whose candidate multiset contains any
duplicate perturbation (the only way an equality event can occur) are
replayed through the reference's relaxation loop in arrival order; all
other targets take the fully vectorized argmin path.

Entry conditions are checked by :func:`weighted_plan`: the kernel runs
only when the per-edge perturbations export to ``int64``
(:meth:`~repro.spt.weights.WeightAssignment.pert_array`) and no path or
seed can overflow either the perturbation field (``2**shift``, which
would carry into the hop bits of the reference's big-int sum) or
``int64``.  Everything else - the exact scheme in particular - falls
back to the big-int reference Dijkstra.

Stacked (batched) traversals
----------------------------
Many *independent* weighted traversals of the same graph (the Pcons
detour Dijkstras, the per-tree-edge replacement recomputes of the
weighted failure sweep) can share every per-level numpy invocation:
batch ``b`` runs in its own *layer* of a virtual ``B * n`` vertex space
(vertex ``v`` of batch ``b`` is the global id ``b * n + v``), and a
:func:`stacked_expander` maps frontier expansion back onto the one
shared CSR view.  Layers are vertex-disjoint, relaxations never cross
them, and within a layer the global settle order ``(pert, b * n + v)``
coincides with the single-run order ``(pert, v)`` - so each layer's
result is bit-identical to running that batch alone.  Seeds for stacked
runs arrive as :class:`SeedArrays` and go through a vectorized intake
(same running-min/tie semantics as the sequential seed loop; groups with
duplicated ``(hop, pert)`` labels are replayed through the reference
loop in arrival order, exactly like relaxation candidates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.engine.csr import CSRAdjacency
from repro.engine.kernels import expand_frontier
from repro.errors import GraphError, TieBreakError
from repro.spt.result import ShortestPathResult
from repro.spt.weights import RANDOM, WeightAssignment

__all__ = [
    "weighted_plan",
    "weighted_levels",
    "assemble_result",
    "decompose_seeds",
    "SeedArrays",
    "stacked_expander",
    "unstack_layer",
]

#: Seed tuple consumed by :func:`weighted_levels`:
#: ``(hop, pert, vertex, parent, parent_eid)``.
Seed = Tuple[int, int, int, int, int]

_INT64_LIMIT = 2**63


@dataclass(frozen=True)
class SeedArrays:
    """Column-wise seeds for :func:`weighted_levels` (int64 arrays).

    ``vertex`` holds *global* ids (already layer-offset for stacked
    runs); ``parent`` may hold local ids - callers map results back with
    :func:`unstack_layer`, which reduces any non-negative parent modulo
    the layer width.  Arrival order (the reference's running-min order)
    is the array order.
    """

    hop: np.ndarray
    pert: np.ndarray
    vertex: np.ndarray
    parent: np.ndarray
    parent_eid: np.ndarray

    @property
    def size(self) -> int:
        return int(self.vertex.size)


def stacked_expander(
    csr: CSRAdjacency,
    *,
    banned_eid_per_batch: Optional[np.ndarray] = None,
) -> Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Frontier expansion over ``B`` stacked layers of one CSR view.

    Global id ``b * n + v`` expands to ``v``'s neighbors shifted into
    layer ``b``; edge ids stay the base graph's (perturbation lookups
    are shared).  ``banned_eid_per_batch[b]`` (optional) drops that one
    edge from layer ``b``'s expansions - the stacked equivalent of the
    reference's ``banned_edge`` filter.
    """
    n = csr.num_vertices
    indptr, indices, edge_ids = csr.indptr, csr.indices, csr.edge_ids

    def expand(frontier: np.ndarray):
        local = frontier % n
        starts = indptr[local]
        counts = indptr[local + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        cum = np.cumsum(counts)
        flat = np.arange(total, dtype=np.int64) + np.repeat(
            starts - (cum - counts), counts
        )
        srcs = np.repeat(frontier, counts)
        nbrs = indices[flat] + np.repeat(frontier - local, counts)
        eids = edge_ids[flat]
        if banned_eid_per_batch is not None:
            keep = eids != banned_eid_per_batch[srcs // n]
            if not keep.all():
                srcs, nbrs, eids = srcs[keep], nbrs[keep], eids[keep]
        return srcs, nbrs, eids

    return expand


def unstack_layer(
    n: int,
    batch: int,
    settled: np.ndarray,
    hop: np.ndarray,
    pert: np.ndarray,
    parent: np.ndarray,
    parent_eid: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Slice one layer out of a stacked result, localizing parent ids.

    Relaxation writes *global* parents; seed parents may already be
    local.  Both reduce to the local id modulo ``n`` (layer offsets are
    multiples of ``n``); ``-1`` stays ``-1``.
    """
    sl = slice(batch * n, (batch + 1) * n)
    par = parent[sl]
    par = np.where(par >= 0, par % n, par)
    return settled[sl], hop[sl], pert[sl], par, parent_eid[sl]


def weighted_plan(
    graph, weights: WeightAssignment, *, max_seed_pert: int = 0
) -> Optional[np.ndarray]:
    """The per-edge ``int64`` perturbation array, or ``None`` to fall back.

    ``None`` means the array kernel cannot *provably* reproduce the
    reference: non-random scheme, perturbations that do not fit
    ``int64``, or a graph large enough that a path's perturbation sum
    (plus the largest seed perturbation) could overflow the
    perturbation field ``2**shift`` or ``int64``.
    """
    if weights.scheme != RANDOM:
        return None
    export = weights.pert_array()
    if export is None:
        return None
    perts, max_pert = export
    n = graph.num_vertices
    bound = max_seed_pert + max(0, n - 1) * max_pert
    if bound >= min(weights.big, _INT64_LIMIT):
        return None
    return perts


def decompose_seeds(
    seeds: Iterable[Tuple[int, int, int, int]], shift: int
) -> List[Seed]:
    """Split reference seeds ``(dist, v, parent, parent_eid)`` into
    ``(hop, pert, v, parent, parent_eid)`` pairs."""
    mask = (1 << shift) - 1
    return [(d0 >> shift, d0 & mask, v0, p0, pe0) for d0, v0, p0, pe0 in seeds]


def weighted_levels(
    csr: CSRAdjacency,
    pert_edge: np.ndarray,
    seeds: Union[List[Seed], SeedArrays],
    *,
    edge_ok: Optional[np.ndarray] = None,
    vertex_ok: Optional[np.ndarray] = None,
    allowed_ok: Optional[np.ndarray] = None,
    raise_on_tie: bool = True,
    scheme: str = RANDOM,
    num_vertices: Optional[int] = None,
    expand: Optional[Callable] = None,
    state: Optional[Tuple[np.ndarray, ...]] = None,
    layer_width: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Level-synchronous weighted traversal over the CSR view.

    Returns ``(settled, hop, pert, parent, parent_eid)``; ``settled``
    marks reached vertices, whose composite distance is the pair
    ``(hop, pert)``.  ``allowed_ok`` (when given) restricts settling to
    a vertex subset and makes the seed loop validate membership, exactly
    like the reference's ``allowed_vertices``.

    Stacked runs pass ``num_vertices = B * n`` with a
    :func:`stacked_expander` and :class:`SeedArrays` seeds; all masks
    are then sized ``B * n``.  ``state`` (optional) supplies the five
    state arrays preallocated by the caller - ``settled`` all-False and
    ``hop`` all ``-1``, the other three arbitrary (every read of them is
    gated on a write made during this run).  Restricted sweeps reuse one
    buffer across chunks this way, resetting only touched positions,
    instead of paying an O(B * n) allocation per chunk.
    """
    n = csr.num_vertices if num_vertices is None else num_vertices
    if expand is None:
        def expand(frontier: np.ndarray):
            return expand_frontier(csr, frontier)
    if state is not None:
        settled, hop_t, pert_t, parent, parent_eid = state
    else:
        hop_t = np.full(n, -1, dtype=np.int64)
        pert_t = np.zeros(n, dtype=np.int64)
        parent = np.full(n, -1, dtype=np.int64)
        parent_eid = np.full(n, -1, dtype=np.int64)
        settled = np.zeros(n, dtype=bool)

    # Pending labels bucketed by hop level; stale entries (labels later
    # improved to a lower level, or already settled) are filtered out
    # when their bucket is drained, so duplicates are harmless.
    buckets: dict = {}

    if isinstance(seeds, SeedArrays):
        seed_vertices = _intake_seed_arrays(
            seeds, n, allowed_ok, hop_t, pert_t, parent, parent_eid,
            buckets, raise_on_tie, scheme, layer_width,
        )
    else:
        seed_vertices = _intake_seed_list(
            seeds, n, allowed_ok, hop_t, pert_t, parent, parent_eid,
            buckets, raise_on_tie, scheme,
        )

    while buckets:
        h = min(buckets)
        entries = buckets.pop(h)
        if len(entries) == 1:
            # Every pusher appends unique, ascending ids (level winners
            # are group targets of a sorted stream; seed buckets come
            # from np.unique) - the common single-entry bucket skips the
            # hash-based dedup entirely.
            frontier = entries[0]
        else:
            frontier = np.unique(np.concatenate(entries))
        frontier = frontier[~settled[frontier] & (hop_t[frontier] == h)]
        if frontier.size == 0:
            continue
        # Settle order = the reference heap's pop order: (pert, vertex).
        # The bucket is ascending by id; a stable sort by pert keeps id
        # order inside equal perturbations.  (Stacked layers: within a
        # layer, global-id order equals local-id order, so each layer
        # settles exactly as its single run would.)
        frontier = frontier[np.argsort(pert_t[frontier], kind="stable")]
        settled[frontier] = True

        srcs, nbrs, eids = expand(frontier)
        keep = ~settled[nbrs]
        if edge_ok is not None:
            keep &= edge_ok[eids]
        if vertex_ok is not None:
            keep &= vertex_ok[nbrs]
        if allowed_ok is not None:
            keep &= allowed_ok[nbrs]
        srcs, nbrs, eids = srcs[keep], nbrs[keep], eids[keep]
        if nbrs.size == 0:
            continue
        cand = pert_t[srcs] + pert_edge[eids]

        # Targets already holding a tentative hop-(h+1) label: the
        # reference compares every relaxation against it, so it joins
        # each target's stream as the leading pseudo-candidate.  Such
        # labels can only stem from seeds (this level's own updates are
        # not yet applied), so the machinery is skipped entirely once
        # every seed vertex has settled - in particular always for
        # single-source runs.
        if seed_vertices.size and not settled[seed_vertices].all():
            init_targets = np.unique(nbrs[hop_t[nbrs] == h + 1])
        else:
            init_targets = np.empty(0, dtype=np.int64)
        init_count = int(init_targets.size)
        if init_count:
            t_all = np.concatenate([init_targets, nbrs])
            c_all = np.concatenate([pert_t[init_targets], cand])
            s_all = np.concatenate([parent[init_targets], srcs])
            e_all = np.concatenate([parent_eid[init_targets], eids])
        else:
            t_all, c_all, s_all, e_all = nbrs, cand, srcs, eids

        # One stable sort by (target, candidate) decides everything:
        # groups are contiguous, each group's first element is its
        # winner (minimum value, earliest arrival among equals - inits
        # precede stream candidates pre-sort, so they win exact ties
        # like the reference's running label does), and a duplicated
        # (target, value) pair - the only way the reference's
        # order-dependent equality event can occur - is an adjacent
        # equality.  The rare duplicated groups are replayed through the
        # reference loop in arrival order.
        order = np.lexsort((c_all, t_all))
        t_s, c_s = t_all[order], c_all[order]
        change = np.empty(t_s.size, dtype=bool)
        change[0] = True
        np.not_equal(t_s[1:], t_s[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        grp_target = t_s[starts]
        win = order[starts]
        dup_adj = ~change[1:] & (c_s[1:] == c_s[:-1])

        if dup_adj.any():
            dup_flag = np.zeros(n, dtype=bool)
            dup_flag[t_s[1:][dup_adj]] = True
            grp_dup = dup_flag[grp_target]
            winner_is_init = win < init_count
            upd = ~grp_dup & ~winner_is_init
            tg, wi = grp_target[upd], win[upd]
            hop_t[tg] = h + 1
            pert_t[tg] = c_all[wi]
            parent[tg] = s_all[wi]
            parent_eid[tg] = e_all[wi]
            counts = np.diff(starts, append=t_s.size)
            _replay_duplicates(
                np.flatnonzero(grp_dup), starts, counts, order, init_count,
                c_all, s_all, e_all, grp_target, h,
                hop_t, pert_t, parent, parent_eid, raise_on_tie, scheme,
                layer_width,
            )
            pushed = grp_target
        elif init_count:
            upd = win >= init_count  # the pre-existing label lost
            tg, wi = grp_target[upd], win[upd]
            hop_t[tg] = h + 1
            pert_t[tg] = c_all[wi]
            parent[tg] = s_all[wi]
            parent_eid[tg] = e_all[wi]
            pushed = tg
        else:
            hop_t[grp_target] = h + 1
            pert_t[grp_target] = c_all[win]
            parent[grp_target] = s_all[win]
            parent_eid[grp_target] = e_all[win]
            pushed = grp_target
        if pushed.size:
            buckets.setdefault(h + 1, []).append(pushed)

    return settled, hop_t, pert_t, parent, parent_eid


def _intake_seed_list(
    seeds: List[Seed],
    n: int,
    allowed_ok: Optional[np.ndarray],
    hop_t: np.ndarray,
    pert_t: np.ndarray,
    parent: np.ndarray,
    parent_eid: np.ndarray,
    buckets: dict,
    raise_on_tie: bool,
    scheme: str,
) -> np.ndarray:
    """Sequential seed intake, replicating the reference's running-min
    and tie semantics entry by entry (the list-seed counterpart of
    :func:`_intake_seed_arrays`)."""
    for h0, p0, v0, par0, pe0 in seeds:
        if allowed_ok is not None and not (0 <= v0 < n and allowed_ok[v0]):
            raise GraphError(f"seed vertex {v0} outside the allowed set")
        cur_h = int(hop_t[v0])
        if cur_h == -1 or (h0, p0) < (cur_h, int(pert_t[v0])):
            hop_t[v0] = h0
            pert_t[v0] = p0
            parent[v0] = par0
            parent_eid[v0] = pe0
            buckets.setdefault(h0, []).append(np.asarray([v0], dtype=np.int64))
        elif (h0, p0) == (cur_h, int(pert_t[v0])) and pe0 != parent_eid[v0]:
            if raise_on_tie:
                raise TieBreakError(
                    f"equal-weight seeds for vertex {v0} (scheme={scheme})"
                )
    return np.asarray(sorted({s[2] for s in seeds}), dtype=np.int64)


def _intake_seed_arrays(
    sa: SeedArrays,
    n: int,
    allowed_ok: Optional[np.ndarray],
    hop_t: np.ndarray,
    pert_t: np.ndarray,
    parent: np.ndarray,
    parent_eid: np.ndarray,
    buckets: dict,
    raise_on_tie: bool,
    scheme: str,
    layer_width: Optional[int] = None,
) -> np.ndarray:
    """Vectorized seed intake, equivalent to the sequential seed loop.

    Per seed vertex the final label is the lexicographic ``(hop, pert)``
    minimum with the *first arrival* among equal minima as parent - an
    equality against the running minimum with a different entry edge is
    the reference's seed tie.  Ties require a duplicated ``(hop, pert)``
    label on the same vertex, so only those (rare) vertices replay the
    sequential loop; everything else is one lexsort + first-per-group.
    """
    vs = sa.vertex
    if allowed_ok is not None and vs.size:
        ok = (vs >= 0) & (vs < n)
        ok &= allowed_ok[np.where(ok, vs, 0)]
        if not ok.all():
            # An invalid seed exists, so this intake ends in an
            # exception either way - but *which* one must match the
            # reference, whose sequential loop can hit a seed tie
            # before ever reaching the invalid entry.  Replay all
            # seeds in arrival order with the reference semantics.
            _replay_invalid_seeds(
                sa, n, allowed_ok, raise_on_tie, scheme, layer_width
            )
    if vs.size == 0:
        return np.empty(0, dtype=np.int64)

    order = np.lexsort((np.arange(vs.size), sa.pert, sa.hop, vs))
    v_s, h_s, p_s = vs[order], sa.hop[order], sa.pert[order]
    first = np.empty(v_s.size, dtype=bool)
    first[0] = True
    np.not_equal(v_s[1:], v_s[:-1], out=first[1:])
    dup_adj = (~first[1:]) & (h_s[1:] == h_s[:-1]) & (p_s[1:] == p_s[:-1])
    if dup_adj.any():
        dup_flag = np.zeros(n, dtype=bool)
        dup_flag[v_s[1:][dup_adj]] = True
        # Replay duplicated vertices' seeds in arrival order.
        for j in np.flatnonzero(dup_flag[vs]).tolist():
            v0 = int(vs[j])
            h0, p0 = int(sa.hop[j]), int(sa.pert[j])
            cur_h = int(hop_t[v0])
            if cur_h == -1 or (h0, p0) < (cur_h, int(pert_t[v0])):
                hop_t[v0] = h0
                pert_t[v0] = p0
                parent[v0] = sa.parent[j]
                parent_eid[v0] = sa.parent_eid[j]
            elif (h0, p0) == (cur_h, int(pert_t[v0])) and int(
                sa.parent_eid[j]
            ) != int(parent_eid[v0]):
                if raise_on_tie:
                    raise TieBreakError(
                        f"equal-weight seeds for vertex "
                        f"{_display_id(v0, n, layer_width)} (scheme={scheme})"
                    )
        keep = first & ~dup_flag[v_s]
    else:
        keep = first
    wi = order[keep]
    tg = vs[wi]
    hop_t[tg] = sa.hop[wi]
    pert_t[tg] = sa.pert[wi]
    parent[tg] = sa.parent[wi]
    parent_eid[tg] = sa.parent_eid[wi]

    seed_vertices = np.unique(vs)
    final_h = hop_t[seed_vertices]
    for h in np.unique(final_h).tolist():
        buckets.setdefault(h, []).append(seed_vertices[final_h == h])
    return seed_vertices


def _display_id(v0: int, n: int, layer_width: Optional[int]) -> int:
    """The caller-facing vertex id behind a stacked seed id.

    In-range ids localize modulo the layer width; ids past the sentinel
    boundary carry the caller's original out-of-range id (see the
    stacked seeded path in :mod:`repro.engine.csr_engine`); everything
    else (negative ids, unstacked runs) is already caller-facing.
    """
    if layer_width is None:
        return v0
    if v0 > n:
        return v0 - n - 1  # out-of-range sentinel: n + 1 + original
    if v0 < 0:
        return v0
    return v0 % layer_width


def _replay_invalid_seeds(
    sa: SeedArrays,
    n: int,
    allowed_ok: np.ndarray,
    raise_on_tie: bool,
    scheme: str,
    layer_width: Optional[int] = None,
) -> None:
    """Reference seed loop for streams containing an invalid seed.

    Always raises: either the reference's GraphError at the first seed
    outside the allowed set, or a TieBreakError that the sequential
    loop would have hit first.
    """
    best: dict = {}
    for h0, p0, v0, pe0 in zip(
        sa.hop.tolist(), sa.pert.tolist(), sa.vertex.tolist(),
        sa.parent_eid.tolist(),
    ):
        if not (0 <= v0 < n and allowed_ok[v0]):
            raise GraphError(
                f"seed vertex {_display_id(v0, n, layer_width)} "
                "outside the allowed set"
            )
        cur = best.get(v0)
        if cur is None or (h0, p0) < cur[:2]:
            best[v0] = (h0, p0, pe0)
        elif (h0, p0) == cur[:2] and pe0 != cur[2]:
            if raise_on_tie:
                raise TieBreakError(
                    f"equal-weight seeds for vertex "
                    f"{_display_id(v0, n, layer_width)} (scheme={scheme})"
                )
    raise AssertionError(
        "unreachable: _replay_invalid_seeds requires an invalid seed"
    )  # pragma: no cover


def _replay_duplicates(
    groups: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    order: np.ndarray,
    init_count: int,
    c_all: np.ndarray,
    s_all: np.ndarray,
    e_all: np.ndarray,
    grp_target: np.ndarray,
    h: int,
    hop_t: np.ndarray,
    pert_t: np.ndarray,
    parent: np.ndarray,
    parent_eid: np.ndarray,
    raise_on_tie: bool,
    scheme: str,
    layer_width: Optional[int] = None,
) -> None:
    """Reference relaxation loop for targets with duplicated candidates.

    Replays candidates in arrival order (recovered by sorting the
    group's slice of the sort permutation - pre-sort position *is*
    arrival order, inits first): strict improvement moves the running
    minimum, equality against it with a different edge is the
    reference's tie (raised in level order, matching the settle order
    the reference would have raised in).
    """
    for g in groups.tolist():
        lo = int(starts[g])
        target = int(grp_target[g])
        arrivals = np.sort(order[lo : lo + int(counts[g])])
        run_c = run_s = run_e = None
        win_j = -1
        for j in arrivals.tolist():
            c = int(c_all[j])
            if run_c is None or c < run_c:
                run_c, run_s, run_e = c, int(s_all[j]), int(e_all[j])
                win_j = j
            elif c == run_c and int(e_all[j]) != run_e:
                if raise_on_tie:
                    raise TieBreakError(
                        f"equal-weight paths to vertex "
                        f"{target if layer_width is None else target % layer_width}"
                        f" (scheme={scheme})"
                    )
        if win_j == int(arrivals[0]) and win_j < init_count:
            continue  # the pre-existing label survives unchanged
        hop_t[target] = h + 1
        pert_t[target] = run_c
        parent[target] = run_s
        parent_eid[target] = run_e


def assemble_result(
    source: int,
    shift: int,
    settled: np.ndarray,
    hop: np.ndarray,
    pert: np.ndarray,
    parent: np.ndarray,
    parent_eid: np.ndarray,
) -> ShortestPathResult:
    """Recompose ``(hop, pert)`` pairs into the reference's big-int form.

    The composite ``hop << shift`` overflows ``int64`` (shift is 63 for
    the random scheme), so the final distances are built as Python ints;
    they are bit-identical to the reference's weight sums because the
    plan guaranteed perturbation sums never carry into the hop bits.
    """
    if settled.all():
        dist: List[Optional[int]] = [
            (h << shift) + p for h, p in zip(hop.tolist(), pert.tolist())
        ]
    else:
        dist = [
            (h << shift) + p if ok else None
            for ok, h, p in zip(settled.tolist(), hop.tolist(), pert.tolist())
        ]
    return ShortestPathResult(
        source=source,
        dist=dist,
        parent=parent.tolist(),
        parent_eid=parent_eid.tolist(),
    )

"""Compile-on-demand loader for the ``csr-c`` engine's C kernels.

``_ckernels.c`` (the sweep hot pair - ordered BFS + Euler walk, subtree
recompute - and the weighted stacked-level relaxation) ships as source;
no wheel, no build step at install time.
The first time the compiled engine needs its kernels this module

1. finds a system C compiler (``$REPRO_CC`` override > ``$CC`` >
   ``cc`` > ``gcc`` > ``clang``; ``REPRO_CC=0`` disables the backend
   entirely, the moral twin of running without numpy);
2. compiles the source once into a per-version cache directory
   (``$REPRO_CC_CACHE`` > ``$XDG_CACHE_HOME/repro`` > ``~/.cache/repro``
   > a temp dir), with the shared object keyed by a hash of the source,
   the compiler's version banner, and the flags - so upgrading any of
   them recompiles and stale caches are never loaded;
3. loads it with stdlib :mod:`ctypes` and pins argument/return types.

Everything degrades, never raises, at the module boundary:
:func:`kernel_library` returns ``None`` when the backend is disabled,
no compiler exists, or the compile/load fails (with a one-time
warning), and the compiled engine falls back to its numpy superclass.
:func:`available` is the cheap registration gate - it only checks for a
plausible compiler and defers the actual compile to first use.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shlex
import shutil
import subprocess
import tempfile
import warnings
from pathlib import Path
from typing import Optional, Tuple

__all__ = [
    "CC_ENV_VAR",
    "CC_CACHE_ENV_VAR",
    "CC_FLAGS_ENV_VAR",
    "CFLAGS",
    "KernelLib",
    "available",
    "cache_dir",
    "cc_disabled",
    "cflags",
    "compiler_description",
    "extra_cflags",
    "find_compiler",
    "kernel_library",
    "toolchain_info",
]

#: ``0`` disables the compiled backend; any other value names/paths the
#: compiler to use instead of the ``$CC``/cc/gcc/clang search.
CC_ENV_VAR = "REPRO_CC"

#: Overrides the kernel cache directory.
CC_CACHE_ENV_VAR = "REPRO_CC_CACHE"

#: Extra compiler flags appended to :data:`CFLAGS` (shlex-split), e.g.
#: ``-fsanitize=address,undefined -g`` for the CI sanitizer jobs.  The
#: flags fold into the shared-object cache key, so flipping them
#: recompiles into a distinct cache entry instead of reusing a stale one.
CC_FLAGS_ENV_VAR = "REPRO_CC_FLAGS"

#: One compilation unit, no Python headers: plain C11 at -O3.
CFLAGS = ("-O3", "-fPIC", "-shared", "-std=c11")

_SOURCE = Path(__file__).with_name("_ckernels.c")

#: Memoized per (compiler, effective flags): None -> attempted and
#: unavailable (warned once), else the loaded KernelLib.  Keyed so a
#: test or sanitizer job flipping $REPRO_CC_FLAGS mid-process gets the
#: right library, while repeat calls keep returning the same object.
_loaded: dict = {}


def extra_cflags() -> Tuple[str, ...]:
    """Flags from ``$REPRO_CC_FLAGS`` (shlex-split, possibly empty)."""
    raw = os.environ.get(CC_FLAGS_ENV_VAR, "").strip()
    return tuple(shlex.split(raw)) if raw else ()


def cflags() -> Tuple[str, ...]:
    """The effective compile flags: :data:`CFLAGS` + ``$REPRO_CC_FLAGS``."""
    return CFLAGS + extra_cflags()


def cc_disabled() -> bool:
    """True when ``REPRO_CC=0`` gates the compiled backend out."""
    return os.environ.get(CC_ENV_VAR, "").strip() == "0"


def find_compiler() -> Optional[str]:
    """Absolute path of the C compiler to use, or None."""
    override = os.environ.get(CC_ENV_VAR, "").strip()
    if override == "0":
        return None
    candidates = [override] if override else []
    env_cc = os.environ.get("CC", "").strip()
    if env_cc:
        candidates.append(env_cc)
    candidates += ["cc", "gcc", "clang"]
    for cand in candidates:
        path = shutil.which(cand)
        if path:
            return path
    return None


def available() -> bool:
    """Cheap registration gate: a compiler plausibly exists and the
    backend is not disabled.  (Compilation itself is deferred to first
    kernel use; a compiler that is found but then fails to compile
    degrades to the numpy kernels at runtime instead of unregistering.)
    """
    return find_compiler() is not None


_version_cache: dict = {}


def _cc_version(cc: str) -> str:
    """First line of ``cc --version`` (cache key + human description)."""
    if cc not in _version_cache:
        try:
            proc = subprocess.run(
                [cc, "--version"], capture_output=True, text=True, timeout=30
            )
            banner = (proc.stdout or proc.stderr).splitlines()
            _version_cache[cc] = banner[0].strip() if banner else cc
        except OSError:
            _version_cache[cc] = cc
    return _version_cache[cc]


def cache_dir() -> Path:
    """Where compiled kernels live (not created until a compile runs)."""
    override = os.environ.get(CC_CACHE_ENV_VAR, "").strip()
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _lib_path(cc: str) -> Path:
    source = _SOURCE.read_bytes()
    key = hashlib.sha256(
        source + _cc_version(cc).encode() + " ".join(cflags()).encode()
    ).hexdigest()[:16]
    return cache_dir() / f"_ckernels-{key}.so"


def _compile(cc: str, lib_path: Path) -> None:
    """Compile the kernels to ``lib_path`` (atomic rename, raise on error)."""
    lib_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(lib_path.parent), prefix=".ckernels-", suffix=".so"
    )
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, *cflags(), "-o", tmp, str(_SOURCE)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{cc} exited {proc.returncode}: {proc.stderr.strip()[:500]}"
            )
        os.replace(tmp, lib_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


class KernelLib:
    """The loaded shared object with argument types pinned.

    Array arguments are ``c_void_p`` so callers pass raw
    ``ndarray.ctypes.data`` addresses (or None for the NULL-able
    masks/outputs); scalars are int64.  Foreign calls release the GIL.
    """

    def __init__(self, path: Path, cc: str) -> None:
        self.path = path
        self.cc = cc
        self.cc_version = _cc_version(cc)
        dll = ctypes.CDLL(str(path))
        i64, ptr = ctypes.c_int64, ctypes.c_void_p

        self.bfs_order = dll.repro_bfs_order
        self.bfs_order.restype = i64
        self.bfs_order.argtypes = [
            i64, ptr, ptr, ptr, i64, ptr, ptr, ptr, ptr, ptr, ptr,
        ]
        self.bfs_euler = dll.repro_bfs_euler
        self.bfs_euler.restype = i64
        self.bfs_euler.argtypes = [
            i64, ptr, ptr, ptr, i64, ptr, ptr, ptr, ptr, ptr, ptr, ptr, ptr,
        ]
        self.recompute_subtree = dll.repro_recompute_subtree
        self.recompute_subtree.restype = i64
        self.recompute_subtree.argtypes = [
            i64, ptr, ptr, ptr, ptr, i64, ptr, i64, i64, ptr, ptr, ptr,
        ]
        self.weighted_levels = dll.repro_weighted_levels
        self.weighted_levels.restype = i64
        self.weighted_levels.argtypes = [
            i64, i64, ptr, ptr, ptr, ptr, ptr, ptr, ptr, ptr,
            i64, ptr, ptr, ptr, ptr, ptr, i64, ptr, ptr, ptr, ptr, ptr,
        ]


def kernel_library() -> Optional[KernelLib]:
    """The loaded kernels, compiling on first use; None when unavailable.

    Success and failure are both memoized per process (failure warns
    once); ``REPRO_CC=0`` is honored even between calls, so tests can
    gate an already-warm process back out.
    """
    if cc_disabled():
        return None
    cc = find_compiler()
    if cc is None:
        return None
    memo_key = (cc, cflags())
    if memo_key in _loaded:
        return _loaded[memo_key]
    try:
        lib_path = _lib_path(cc)
        if not lib_path.exists():
            _compile(cc, lib_path)
        _loaded[memo_key] = KernelLib(lib_path, cc)
    except Exception as exc:  # compile or load failure: degrade, once
        warnings.warn(
            f"csr-c kernels unavailable ({exc}); falling back to numpy kernels",
            RuntimeWarning,
            stacklevel=2,
        )
        _loaded[memo_key] = None
    return _loaded[memo_key]


def compiler_description() -> str:
    """One line for ``repro engines``: toolchain + kernel cache path."""
    if cc_disabled():
        return f"disabled (${CC_ENV_VAR}=0)"
    cc = find_compiler()
    if cc is None:
        return "no C compiler found (cc/gcc/clang)"
    lib = kernel_library()
    if lib is None:
        return f"{_cc_version(cc)} (compile failed; numpy kernels in use)"
    return f"{lib.cc_version} [{' '.join(cflags())}] cache: {lib.path}"


def toolchain_info() -> dict:
    """Toolchain stamp for bench artifacts (JSON-safe)."""
    cc = find_compiler()
    lib = kernel_library()
    return {
        "cc": cc,
        "cc_version": _cc_version(cc) if cc else None,
        "cflags": " ".join(cflags()),
        "kernel_lib": str(lib.path) if lib else None,
        "compiled": lib is not None,
    }

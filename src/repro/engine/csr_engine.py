"""The numpy/CSR engine: array kernels behind the reference contract.

Hop traversals run on the cached CSR view through the kernels in
:mod:`repro.engine.kernels`; results are converted back to the plain
Python containers the contract promises (except ``failure_sweep``, which
yields numpy vectors - values-only contract).

Weighted traversals take the fast path of
:mod:`repro.engine.weighted_kernels` whenever
:func:`~repro.engine.weighted_kernels.weighted_plan` proves the
assignment array-representable (the random scheme on any graph this
library can build); the exact scheme's ``2**eid`` perturbations are
arbitrary-precision and transparently fall back to the shared big-int
reference Dijkstra.  Either way the results - distances, parents,
parent edges, tie errors - are bit-identical to the reference.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro._types import EdgeId, Vertex
from repro.engine.base import UNREACHABLE
from repro.engine.csr import csr_view
from repro.engine.kernels import FailureSweep, bfs_levels, bfs_levels_ordered
from repro.engine.python_engine import PythonEngine, _check_source
from repro.engine.weighted_kernels import (
    assemble_result,
    decompose_seeds,
    weighted_levels,
    weighted_plan,
)
from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = ["CSREngine"]


def _valid_ids(ids: Iterable[int], limit: int) -> np.ndarray:
    """Ids within ``[0, limit)``; out-of-range ids name nothing and are
    dropped, matching the reference engine's set-membership filters
    (numpy would otherwise wrap negatives or raise)."""
    return np.asarray([i for i in ids if 0 <= i < limit], dtype=np.int64)


def _edge_ok_mask(
    m: int,
    *,
    banned_edge: Optional[EdgeId] = None,
    banned_edges: Optional[Set[EdgeId]] = None,
    allowed_edges: Optional[Set[EdgeId]] = None,
) -> Optional[np.ndarray]:
    """A per-edge boolean mask, or None when every edge is usable."""
    if banned_edge is None and not banned_edges and allowed_edges is None:
        return None
    if allowed_edges is not None:
        ok = np.zeros(m, dtype=bool)
        ok[_valid_ids(allowed_edges, m)] = True
    else:
        ok = np.ones(m, dtype=bool)
    if banned_edges:
        ok[_valid_ids(banned_edges, m)] = False
    if banned_edge is not None and 0 <= banned_edge < m:
        ok[banned_edge] = False
    return ok


#: Below this many allowed vertices, seeded weighted traversals stay on
#: the reference heap (array per-level overhead dominates tiny runs).
_SMALL_WEIGHTED = 48


def _vertex_ok_mask(
    n: int, banned_vertices: Optional[Set[Vertex]]
) -> Optional[np.ndarray]:
    if not banned_vertices:
        return None
    ok = np.ones(n, dtype=bool)
    ok[_valid_ids(banned_vertices, n)] = False
    return ok


class CSREngine(PythonEngine):
    """Array-kernel engine for hop *and* (random-scheme) weighted traversals."""

    name = "csr"
    weighted_backend = "array (random scheme) + reference fallback"

    def distances(
        self,
        graph: Graph,
        source: Vertex,
        *,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        banned_vertices: Optional[Set[Vertex]] = None,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> List[int]:
        _check_source(graph, source)
        csr = csr_view(graph)
        vertex_ok = _vertex_ok_mask(csr.num_vertices, banned_vertices)
        edge_ok = _edge_ok_mask(
            csr.num_edges,
            banned_edge=banned_edge,
            banned_edges=banned_edges,
            allowed_edges=allowed_edges,
        )
        return bfs_levels(csr, source, edge_ok=edge_ok, vertex_ok=vertex_ok).tolist()

    def parents(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> Dict[Vertex, Vertex]:
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(csr.num_edges, allowed_edges=allowed_edges)
        _, parent, _, level_order = bfs_levels_ordered(csr, source, edge_ok=edge_ok)
        result: Dict[Vertex, Vertex] = {}
        for level in level_order:
            for v in level.tolist():
                result[v] = int(parent[v])
        return result

    def distances_subset(
        self,
        graph: Graph,
        source: Vertex,
        targets: Iterable[Vertex],
        *,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        banned_vertices: Optional[Set[Vertex]] = None,
    ) -> Dict[Vertex, int]:
        _check_source(graph, source)
        wanted = set(targets)
        if not wanted:
            return {}
        # A full masked BFS: the early-stopping reference optimization is
        # an implementation detail, not part of the observable contract.
        dist = self.distances(
            graph,
            source,
            banned_edge=banned_edge,
            banned_edges=banned_edges,
            banned_vertices=banned_vertices,
        )
        n = graph.num_vertices
        return {t: dist[t] if 0 <= t < n else UNREACHABLE for t in wanted}

    def sweep(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> FailureSweep:
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(csr.num_edges, allowed_edges=allowed_edges)
        return FailureSweep(csr, source, edge_ok=edge_ok)

    # -- weighted traversals (array fast path + reference fallback) ----
    def shortest_paths(
        self,
        graph: Graph,
        weights,
        source: Vertex,
        *,
        banned_vertices: Optional[Set[Vertex]] = None,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        allowed_edges: Optional[Set[EdgeId]] = None,
        raise_on_tie: bool = True,
    ):
        perts = weighted_plan(graph, weights)
        if perts is None:
            return super().shortest_paths(
                graph,
                weights,
                source,
                banned_vertices=banned_vertices,
                banned_edge=banned_edge,
                banned_edges=banned_edges,
                allowed_edges=allowed_edges,
                raise_on_tie=raise_on_tie,
            )
        _check_source(graph, source)
        if banned_vertices and source in banned_vertices:
            raise GraphError(f"source {source} is banned")
        csr = csr_view(graph)
        settled, hop, pert, parent, parent_eid = weighted_levels(
            csr,
            perts,
            [(0, 0, source, -1, -1)],
            edge_ok=_edge_ok_mask(
                csr.num_edges,
                banned_edge=banned_edge,
                banned_edges=banned_edges,
                allowed_edges=allowed_edges,
            ),
            vertex_ok=_vertex_ok_mask(csr.num_vertices, banned_vertices),
            raise_on_tie=raise_on_tie,
            scheme=weights.scheme,
        )
        return assemble_result(
            source, weights.shift, settled, hop, pert, parent, parent_eid
        )

    def seeded_shortest_paths(
        self,
        graph: Graph,
        weights,
        seeds,
        *,
        allowed_vertices: Set[Vertex],
        banned_edge: Optional[EdgeId] = None,
        raise_on_tie: bool = True,
    ):
        seed_list = list(seeds)
        decomposed = decompose_seeds(seed_list, weights.shift)
        max_seed_pert = max((p0 for _, p0, _, _, _ in decomposed), default=0)
        # Tiny restricted recomputes (leaf-ish subtrees in the
        # replacement engine) are faster on the reference heap than on
        # per-level array passes; results are bit-identical either way.
        if len(allowed_vertices) <= _SMALL_WEIGHTED:
            perts = None
        else:
            perts = weighted_plan(graph, weights, max_seed_pert=max_seed_pert)
        if perts is None:
            return super().seeded_shortest_paths(
                graph,
                weights,
                seed_list,
                allowed_vertices=allowed_vertices,
                banned_edge=banned_edge,
                raise_on_tie=raise_on_tie,
            )
        csr = csr_view(graph)
        allowed_ok = np.zeros(csr.num_vertices, dtype=bool)
        allowed_ok[_valid_ids(allowed_vertices, csr.num_vertices)] = True
        settled, hop, pert, parent, parent_eid = weighted_levels(
            csr,
            perts,
            decomposed,
            edge_ok=_edge_ok_mask(csr.num_edges, banned_edge=banned_edge),
            allowed_ok=allowed_ok,
            raise_on_tie=raise_on_tie,
            scheme=weights.scheme,
        )
        return assemble_result(
            -1, weights.shift, settled, hop, pert, parent, parent_eid
        )

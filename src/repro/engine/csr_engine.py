"""The numpy/CSR engine: array kernels behind the reference contract.

Hop traversals run on the cached CSR view through the kernels in
:mod:`repro.engine.kernels`; results are converted back to the plain
Python containers the contract promises (except ``failure_sweep``, which
yields numpy vectors - values-only contract).  Weighted traversals use
the shared reference Dijkstra: the composite tie-breaking weights are
arbitrary-precision Python ints that no fixed-width array dtype can
hold (see :mod:`repro.engine.base`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro._types import EdgeId, Vertex
from repro.engine.base import UNREACHABLE
from repro.engine.csr import csr_view
from repro.engine.kernels import FailureSweep, bfs_levels, bfs_levels_ordered
from repro.engine.python_engine import PythonEngine, _check_source
from repro.graphs.graph import Graph

__all__ = ["CSREngine"]


def _valid_ids(ids: Iterable[int], limit: int) -> np.ndarray:
    """Ids within ``[0, limit)``; out-of-range ids name nothing and are
    dropped, matching the reference engine's set-membership filters
    (numpy would otherwise wrap negatives or raise)."""
    return np.asarray([i for i in ids if 0 <= i < limit], dtype=np.int64)


def _edge_ok_mask(
    m: int,
    *,
    banned_edge: Optional[EdgeId] = None,
    banned_edges: Optional[Set[EdgeId]] = None,
    allowed_edges: Optional[Set[EdgeId]] = None,
) -> Optional[np.ndarray]:
    """A per-edge boolean mask, or None when every edge is usable."""
    if banned_edge is None and not banned_edges and allowed_edges is None:
        return None
    if allowed_edges is not None:
        ok = np.zeros(m, dtype=bool)
        ok[_valid_ids(allowed_edges, m)] = True
    else:
        ok = np.ones(m, dtype=bool)
    if banned_edges:
        ok[_valid_ids(banned_edges, m)] = False
    if banned_edge is not None and 0 <= banned_edge < m:
        ok[banned_edge] = False
    return ok


def _vertex_ok_mask(
    n: int, banned_vertices: Optional[Set[Vertex]]
) -> Optional[np.ndarray]:
    if not banned_vertices:
        return None
    ok = np.ones(n, dtype=bool)
    ok[_valid_ids(banned_vertices, n)] = False
    return ok


class CSREngine(PythonEngine):
    """Array-kernel engine; inherits the weighted reference traversals."""

    name = "csr"

    def distances(
        self,
        graph: Graph,
        source: Vertex,
        *,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        banned_vertices: Optional[Set[Vertex]] = None,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> List[int]:
        _check_source(graph, source)
        csr = csr_view(graph)
        vertex_ok = _vertex_ok_mask(csr.num_vertices, banned_vertices)
        edge_ok = _edge_ok_mask(
            csr.num_edges,
            banned_edge=banned_edge,
            banned_edges=banned_edges,
            allowed_edges=allowed_edges,
        )
        return bfs_levels(csr, source, edge_ok=edge_ok, vertex_ok=vertex_ok).tolist()

    def parents(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> Dict[Vertex, Vertex]:
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(csr.num_edges, allowed_edges=allowed_edges)
        _, parent, _, level_order = bfs_levels_ordered(csr, source, edge_ok=edge_ok)
        result: Dict[Vertex, Vertex] = {}
        for level in level_order:
            for v in level.tolist():
                result[v] = int(parent[v])
        return result

    def distances_subset(
        self,
        graph: Graph,
        source: Vertex,
        targets: Iterable[Vertex],
        *,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        banned_vertices: Optional[Set[Vertex]] = None,
    ) -> Dict[Vertex, int]:
        _check_source(graph, source)
        wanted = set(targets)
        if not wanted:
            return {}
        # A full masked BFS: the early-stopping reference optimization is
        # an implementation detail, not part of the observable contract.
        dist = self.distances(
            graph,
            source,
            banned_edge=banned_edge,
            banned_edges=banned_edges,
            banned_vertices=banned_vertices,
        )
        n = graph.num_vertices
        return {t: dist[t] if 0 <= t < n else UNREACHABLE for t in wanted}

    def sweep(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> FailureSweep:
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(csr.num_edges, allowed_edges=allowed_edges)
        return FailureSweep(csr, source, edge_ok=edge_ok)

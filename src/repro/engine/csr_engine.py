"""The numpy/CSR engine: array kernels behind the reference contract.

Hop traversals run on the cached CSR view through the kernels in
:mod:`repro.engine.kernels`; results are converted back to the plain
Python containers the contract promises (except ``failure_sweep``, which
yields numpy vectors - values-only contract).

Weighted traversals take the fast path of
:mod:`repro.engine.weighted_kernels` whenever
:func:`~repro.engine.weighted_kernels.weighted_plan` proves the
assignment array-representable (the random scheme on any graph this
library can build); the exact scheme's ``2**eid`` perturbations are
arbitrary-precision and transparently fall back to the shared big-int
reference Dijkstra.  Either way the results - distances, parents,
parent edges, tie errors - are bit-identical to the reference.

The batched primitives (``weighted_failure_sweep``,
``batched_shortest_paths``, ``batched_seeded_shortest_paths``) run many
independent traversals as *stacked* level-synchronous relaxations: each
batch occupies its own layer of a virtual ``B * n`` vertex space over
the one shared CSR view, so every hop level costs one set of numpy
invocations for the whole batch instead of one per traversal.  The
sweep additionally enumerates its crossing-edge seeds vectorized from
the tree's Euler intervals instead of via Python ``adjacency()`` loops.
Chunking bounds the stacked state (``_STACK_STATE`` entries per chunk);
plans that cannot be represented fall back to the reference loops of
:class:`~repro.engine.base.TraversalEngine`, exactly like the per-call
weighted paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

import numpy as np

from repro._types import EdgeId, Vertex
from repro.engine.base import (
    UNREACHABLE,
    ReplacementSweepItem,
    SeedBatch,
    TraversalEngine,
    _zip_sources_and_bans,
)
from repro.engine.csr import csr_view
from repro.engine.kernels import (
    FailureSweep,
    bfs_levels,
    bfs_levels_ordered,
    expand_frontier,
)
from repro.engine.python_engine import PythonEngine, _check_source
from repro.engine.weighted_kernels import (
    SeedArrays,
    assemble_result,
    decompose_seeds,
    stacked_expander,
    unstack_layer,
    weighted_levels,
    weighted_plan,
)
from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = ["CSREngine", "PreparedWeightedSweep"]

#: Cap on stacked state entries (``B * n``) per chunk; bounds the five
#: int64 state arrays of a stacked run at ~16 MB regardless of how many
#: batches a caller requests.
_STACK_STATE = 1 << 21

#: Per-chunk frontier-expansion budget (half-edge entries).  The level
#: streams are what the relaxation repeatedly passes over, so chunks are
#: sized to keep them cache-resident: full-graph batches on a large
#: graph degrade to one layer per chunk (their single-layer streams
#: already saturate the cache), while subtree-restricted batches pack
#: hundreds of layers per chunk.
_STACK_STREAM = 1 << 17


def _stream_chunks(sizes, budget: int, max_batch: int):
    """Greedy ``(lo, hi)`` ranges: pack batches until their summed
    expansion reaches ``budget`` (always at least one per chunk)."""
    lo = 0
    total = 0
    for i, size in enumerate(sizes):
        total += size
        if total >= budget or i - lo + 1 >= max_batch:
            yield lo, i + 1
            lo = i + 1
            total = 0
    if lo < len(sizes):
        yield lo, len(sizes)


def _valid_ids(ids: Iterable[int], limit: int) -> np.ndarray:
    """Ids within ``[0, limit)``; out-of-range ids name nothing and are
    dropped, matching the reference engine's set-membership filters
    (numpy would otherwise wrap negatives or raise)."""
    return np.asarray([i for i in ids if 0 <= i < limit], dtype=np.int64)


def _edge_ok_mask(
    m: int,
    *,
    banned_edge: Optional[EdgeId] = None,
    banned_edges: Optional[Set[EdgeId]] = None,
    allowed_edges: Optional[Set[EdgeId]] = None,
) -> Optional[np.ndarray]:
    """A per-edge boolean mask, or None when every edge is usable."""
    if banned_edge is None and not banned_edges and allowed_edges is None:
        return None
    if allowed_edges is not None:
        ok = np.zeros(m, dtype=bool)
        ok[_valid_ids(allowed_edges, m)] = True
    else:
        ok = np.ones(m, dtype=bool)
    if banned_edges:
        ok[_valid_ids(banned_edges, m)] = False
    if banned_edge is not None and 0 <= banned_edge < m:
        ok[banned_edge] = False
    return ok


#: Below this many allowed vertices, seeded weighted traversals stay on
#: the reference heap (array per-level overhead dominates tiny runs).
_SMALL_WEIGHTED = 48


def _vertex_ok_mask(
    n: int, banned_vertices: Optional[Set[Vertex]]
) -> Optional[np.ndarray]:
    if not banned_vertices:
        return None
    ok = np.ones(n, dtype=bool)
    ok[_valid_ids(banned_vertices, n)] = False
    return ok


class CSREngine(PythonEngine):
    """Array-kernel engine for hop *and* (random-scheme) weighted traversals."""

    name = "csr"
    weighted_backend = "array (random scheme) + reference fallback"
    replacement_backend = "stacked subtree sweep (random scheme) + reference fallback"
    detour_backend = "stacked multi-source levels (random scheme) + reference fallback"

    def distances(
        self,
        graph: Graph,
        source: Vertex,
        *,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        banned_vertices: Optional[Set[Vertex]] = None,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> List[int]:
        _check_source(graph, source)
        csr = csr_view(graph)
        vertex_ok = _vertex_ok_mask(csr.num_vertices, banned_vertices)
        edge_ok = _edge_ok_mask(
            csr.num_edges,
            banned_edge=banned_edge,
            banned_edges=banned_edges,
            allowed_edges=allowed_edges,
        )
        return bfs_levels(csr, source, edge_ok=edge_ok, vertex_ok=vertex_ok).tolist()

    def parents(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> Dict[Vertex, Vertex]:
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(csr.num_edges, allowed_edges=allowed_edges)
        _, parent, _, level_order = bfs_levels_ordered(csr, source, edge_ok=edge_ok)
        result: Dict[Vertex, Vertex] = {}
        for level in level_order:
            for v in level.tolist():
                result[v] = int(parent[v])
        return result

    def distances_subset(
        self,
        graph: Graph,
        source: Vertex,
        targets: Iterable[Vertex],
        *,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        banned_vertices: Optional[Set[Vertex]] = None,
    ) -> Dict[Vertex, int]:
        _check_source(graph, source)
        wanted = set(targets)
        if not wanted:
            return {}
        # A full masked BFS: the early-stopping reference optimization is
        # an implementation detail, not part of the observable contract.
        dist = self.distances(
            graph,
            source,
            banned_edge=banned_edge,
            banned_edges=banned_edges,
            banned_vertices=banned_vertices,
        )
        n = graph.num_vertices
        return {t: dist[t] if 0 <= t < n else UNREACHABLE for t in wanted}

    def sweep(
        self,
        graph: Graph,
        source: Vertex,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> FailureSweep:
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(csr.num_edges, allowed_edges=allowed_edges)
        return FailureSweep(csr, source, edge_ok=edge_ok)

    def sweep_from_base_state(
        self,
        graph: Graph,
        source: Vertex,
        arrays,
        *,
        allowed_edges: Optional[Set[EdgeId]] = None,
    ) -> FailureSweep:
        """A :meth:`sweep` handle rebuilt from published base-state arrays.

        The shm worker bodies call this instead of :meth:`sweep` when the
        parent shipped the base traversal through the base-state segment:
        construction skips the BFS + Euler walk, so a shard's fixed cost
        is O(1) in graph size.  ``arrays`` must come from a handle over
        the same ``(graph, source, allowed_edges)`` sweep.
        """
        _check_source(graph, source)
        csr = csr_view(graph)
        edge_ok = _edge_ok_mask(csr.num_edges, allowed_edges=allowed_edges)
        return FailureSweep.from_base_state(csr, source, arrays, edge_ok=edge_ok)

    # -- weighted traversals (array fast path + reference fallback) ----
    def _weighted_levels(
        self,
        csr,
        perts: np.ndarray,
        seeds,
        *,
        edge_ok: Optional[np.ndarray] = None,
        vertex_ok: Optional[np.ndarray] = None,
        allowed_ok: Optional[np.ndarray] = None,
        raise_on_tie: bool = True,
        scheme: str,
        num_vertices: Optional[int] = None,
        stacked: bool = False,
        banned_eid_per_batch: Optional[np.ndarray] = None,
        state=None,
        touched: Optional[np.ndarray] = None,
        layer_width: Optional[int] = None,
    ):
        """Engine hook behind every weighted relaxation.

        Same contract as :func:`weighted_levels`, but the expansion is
        described structurally (``stacked`` + ``banned_eid_per_batch``)
        instead of as an opaque closure, so subclasses can route the
        relaxation elsewhere - the compiled engine overrides this with
        its C kernel.  ``touched`` names the state positions a caller-
        owned ``state`` run may write (the restricted sweep's subtree
        ids); implementations that bail mid-run use it to restore the
        buffers before retrying.
        """
        del touched  # the numpy path never dirties state without finishing
        expand = (
            stacked_expander(csr, banned_eid_per_batch=banned_eid_per_batch)
            if stacked
            else None
        )
        return weighted_levels(
            csr,
            perts,
            seeds,
            edge_ok=edge_ok,
            vertex_ok=vertex_ok,
            allowed_ok=allowed_ok,
            raise_on_tie=raise_on_tie,
            scheme=scheme,
            num_vertices=num_vertices,
            expand=expand,
            state=state,
            layer_width=layer_width,
        )

    def shortest_paths(
        self,
        graph: Graph,
        weights,
        source: Vertex,
        *,
        banned_vertices: Optional[Set[Vertex]] = None,
        banned_edge: Optional[EdgeId] = None,
        banned_edges: Optional[Set[EdgeId]] = None,
        allowed_edges: Optional[Set[EdgeId]] = None,
        raise_on_tie: bool = True,
    ):
        perts = weighted_plan(graph, weights)
        if perts is None:
            return super().shortest_paths(
                graph,
                weights,
                source,
                banned_vertices=banned_vertices,
                banned_edge=banned_edge,
                banned_edges=banned_edges,
                allowed_edges=allowed_edges,
                raise_on_tie=raise_on_tie,
            )
        _check_source(graph, source)
        if banned_vertices and source in banned_vertices:
            raise GraphError(f"source {source} is banned")
        csr = csr_view(graph)
        settled, hop, pert, parent, parent_eid = self._weighted_levels(
            csr,
            perts,
            [(0, 0, source, -1, -1)],
            edge_ok=_edge_ok_mask(
                csr.num_edges,
                banned_edge=banned_edge,
                banned_edges=banned_edges,
                allowed_edges=allowed_edges,
            ),
            vertex_ok=_vertex_ok_mask(csr.num_vertices, banned_vertices),
            raise_on_tie=raise_on_tie,
            scheme=weights.scheme,
        )
        return assemble_result(
            source, weights.shift, settled, hop, pert, parent, parent_eid
        )

    def seeded_shortest_paths(
        self,
        graph: Graph,
        weights,
        seeds,
        *,
        allowed_vertices: Set[Vertex],
        banned_edge: Optional[EdgeId] = None,
        raise_on_tie: bool = True,
    ):
        seed_list = list(seeds)
        decomposed = decompose_seeds(seed_list, weights.shift)
        max_seed_pert = max((p0 for _, p0, _, _, _ in decomposed), default=0)
        # Tiny restricted recomputes (leaf-ish subtrees in the
        # replacement engine) are faster on the reference heap than on
        # per-level array passes; results are bit-identical either way.
        if len(allowed_vertices) <= _SMALL_WEIGHTED:
            perts = None
        else:
            perts = weighted_plan(graph, weights, max_seed_pert=max_seed_pert)
        if perts is None:
            return super().seeded_shortest_paths(
                graph,
                weights,
                seed_list,
                allowed_vertices=allowed_vertices,
                banned_edge=banned_edge,
                raise_on_tie=raise_on_tie,
            )
        csr = csr_view(graph)
        allowed_ok = np.zeros(csr.num_vertices, dtype=bool)
        allowed_ok[_valid_ids(allowed_vertices, csr.num_vertices)] = True
        settled, hop, pert, parent, parent_eid = self._weighted_levels(
            csr,
            perts,
            decomposed,
            edge_ok=_edge_ok_mask(csr.num_edges, banned_edge=banned_edge),
            allowed_ok=allowed_ok,
            raise_on_tie=raise_on_tie,
            scheme=weights.scheme,
        )
        return assemble_result(
            -1, weights.shift, settled, hop, pert, parent, parent_eid
        )

    # -- batched primitives (stacked layers over one CSR view) ---------
    def batched_shortest_paths(
        self,
        graph: Graph,
        weights,
        sources: Sequence[Vertex],
        banned_vertices_per_source: Optional[Iterable[Optional[Set[Vertex]]]] = None,
        *,
        raise_on_tie: bool = True,
    ):
        perts = weighted_plan(graph, weights)
        if perts is None:
            yield from super().batched_shortest_paths(
                graph, weights, sources, banned_vertices_per_source,
                raise_on_tie=raise_on_tie,
            )
            return
        csr = csr_view(graph)
        n = csr.num_vertices
        # Every full-graph layer expands ~2m half-edges; ban sets stream
        # in lockstep with sources, so only one chunk's worth is alive.
        per_chunk = max(
            1,
            min(
                _STACK_STATE // max(1, n),
                _STACK_STREAM // max(1, 2 * csr.num_edges) + 1,
            ),
        )
        chunk_sources: List[Vertex] = []
        chunk_bans: List[Optional[Set[Vertex]]] = []
        for source, banned in _zip_sources_and_bans(
            sources, banned_vertices_per_source
        ):
            chunk_sources.append(source)
            chunk_bans.append(banned)
            if len(chunk_sources) >= per_chunk:
                yield from self._source_chunk(
                    graph, csr, weights, perts, chunk_sources, chunk_bans,
                    raise_on_tie,
                )
                chunk_sources, chunk_bans = [], []
        if chunk_sources:
            yield from self._source_chunk(
                graph, csr, weights, perts, chunk_sources, chunk_bans,
                raise_on_tie,
            )

    def _source_chunk(
        self,
        graph: Graph,
        csr,
        weights,
        perts: np.ndarray,
        chunk_sources: List[Vertex],
        chunk_bans: List[Optional[Set[Vertex]]],
        raise_on_tie: bool,
    ):
        """One stacked chunk of full-graph single-source traversals."""
        n = csr.num_vertices
        B = len(chunk_sources)
        for v, banned in zip(chunk_sources, chunk_bans):
            _check_source(graph, v)
            if banned and v in banned:
                raise GraphError(f"source {v} is banned")
        vertex_ok = None
        if any(chunk_bans):
            vertex_ok = np.ones(B * n, dtype=bool)
            for b, banned in enumerate(chunk_bans):
                if banned:
                    vertex_ok[b * n + _valid_ids(banned, n)] = False
        zeros = np.zeros(B, dtype=np.int64)
        minus = np.full(B, -1, dtype=np.int64)
        seed_v = np.arange(B, dtype=np.int64) * n + np.asarray(
            chunk_sources, dtype=np.int64
        )
        settled, hop, pert, parent, parent_eid = self._weighted_levels(
            csr,
            perts,
            SeedArrays(zeros, zeros, seed_v, minus, minus),
            vertex_ok=vertex_ok,
            raise_on_tie=raise_on_tie,
            scheme=weights.scheme,
            num_vertices=B * n,
            stacked=True,
            layer_width=n,
        )
        for b, v in enumerate(chunk_sources):
            yield assemble_result(
                v,
                weights.shift,
                *unstack_layer(n, b, settled, hop, pert, parent, parent_eid),
            )

    def batched_seeded_shortest_paths(
        self,
        graph: Graph,
        weights,
        batches: Iterable[SeedBatch],
        *,
        raise_on_tie: bool = True,
    ):
        # Assignments no chunk could ever run on the kernels (exact
        # scheme, unexportable perturbations) delegate wholesale before
        # any big-int seed decomposition happens.
        if weighted_plan(graph, weights) is None:
            yield from super().batched_seeded_shortest_paths(
                graph, weights, batches, raise_on_tie=raise_on_tie
            )
            return
        # Incremental consumption: batches may be a generator (the
        # vertex-fault caller streams one punctured subtree at a time),
        # so accumulate only up to one chunk's expansion budget before
        # running it - peak memory stays O(chunk), like the per-call
        # loop this replaces.
        csr = csr_view(graph)
        n = csr.num_vertices
        max_batch = max(1, _STACK_STATE // max(1, n))
        deg = csr.indptr[1:] - csr.indptr[:-1]
        chunk_batches: List[SeedBatch] = []
        chunk_seeds: List[list] = []
        expansion = 0
        for seeds, allowed, banned_edge in batches:
            seeds = list(seeds)
            chunk_batches.append((seeds, allowed, banned_edge))
            chunk_seeds.append(decompose_seeds(seeds, weights.shift))
            expansion += int(deg[_valid_ids(allowed, n)].sum())
            if expansion >= _STACK_STREAM or len(chunk_batches) >= max_batch:
                yield from self._seeded_chunk(
                    graph, csr, weights, chunk_batches, chunk_seeds,
                    raise_on_tie,
                )
                chunk_batches, chunk_seeds, expansion = [], [], 0
        if chunk_batches:
            yield from self._seeded_chunk(
                graph, csr, weights, chunk_batches, chunk_seeds, raise_on_tie
            )

    def _seeded_chunk(
        self,
        graph: Graph,
        csr,
        weights,
        chunk_batches: List[SeedBatch],
        chunk_seeds: List[list],
        raise_on_tie: bool,
    ):
        """Run one chunk of seeded batches stacked (reference fallback
        per chunk, gated exactly like the per-call seeded path)."""
        max_seed_pert = max(
            (p0 for batch in chunk_seeds for _, p0, _, _, _ in batch), default=0
        )
        perts = weighted_plan(graph, weights, max_seed_pert=max_seed_pert)
        if perts is None:
            yield from TraversalEngine.batched_seeded_shortest_paths(
                self, graph, weights, chunk_batches, raise_on_tie=raise_on_tie
            )
            return
        n = csr.num_vertices
        B = len(chunk_batches)
        allowed_ok = np.zeros(B * n, dtype=bool)
        banned = np.full(B, -1, dtype=np.int64)
        any_ban = False
        cols = {k: [] for k in ("hop", "pert", "vertex", "parent", "parent_eid")}
        for b, ((_, allowed, banned_edge), seeds) in enumerate(
            zip(chunk_batches, chunk_seeds)
        ):
            allowed_ok[b * n + _valid_ids(allowed, n)] = True
            if banned_edge is not None:
                banned[b] = banned_edge
                any_ban = True
            off = b * n
            for h0, p0, v0, par0, pe0 in seeds:
                # Out-of-range seed vertices fail the allowed check
                # with the reference's GraphError, not numpy's
                # wraparound: park them past every layer, encoded so
                # the error message can recover the original id
                # (negatives already fail the >= 0 check as-is).
                if 0 <= v0 < n:
                    stacked = off + v0
                elif v0 < 0:
                    stacked = v0
                else:
                    stacked = B * n + 1 + min(v0, 1 << 40)
                cols["vertex"].append(stacked)
                cols["hop"].append(h0)
                cols["pert"].append(p0)
                cols["parent"].append(par0)
                cols["parent_eid"].append(pe0)
        sa = SeedArrays(
            **{k: np.asarray(v, dtype=np.int64) for k, v in cols.items()}
        )
        settled, hop, pert, parent, parent_eid = self._weighted_levels(
            csr,
            perts,
            sa,
            allowed_ok=allowed_ok,
            raise_on_tie=raise_on_tie,
            scheme=weights.scheme,
            num_vertices=B * n,
            stacked=True,
            banned_eid_per_batch=banned if any_ban else None,
            layer_width=n,
        )
        for b in range(B):
            yield assemble_result(
                -1,
                weights.shift,
                *unstack_layer(n, b, settled, hop, pert, parent, parent_eid),
            )

    def weighted_failure_sweep(
        self,
        graph: Graph,
        weights,
        tree,
        eids: Optional[Sequence[EdgeId]] = None,
    ) -> Iterator[ReplacementSweepItem]:
        edge_list = list(eids) if eids is not None else tree.tree_edges()
        if not edge_list:
            return
        prepared = self.prepared_weighted_sweep(graph, weights, tree, edge_list)
        if prepared is None:
            yield from super().weighted_failure_sweep(
                graph, weights, tree, eids=edge_list
            )
            return
        yield from prepared.items(0, len(edge_list))

    def prepared_weighted_sweep(
        self,
        graph: Graph,
        weights,
        tree,
        eids: Sequence[EdgeId],
    ) -> Optional["PreparedWeightedSweep"]:
        """The sweep's setup as a reusable, slice-runnable state object.

        Everything ``weighted_failure_sweep`` derives per call - the
        gated perturbation plan, the tree's int64 hop/pert decomposition
        and Euler arrays, the edge -> deeper-endpoint map, and the
        per-subtree expansion sizes - computed once and captured in a
        :class:`PreparedWeightedSweep` whose ``items(lo, hi)`` runs any
        contiguous slice of the request.  Shard runners build this once
        per ``(plane, request)`` (the shm workers memoize it, the
        threaded engine shares it across its windows - ``items`` is
        thread-safe, every mutable buffer is allocated per call) instead
        of paying the O(n) setup per shard.  None when the plan gating
        fails; callers fall back to the reference loops.
        """
        edge_list = list(eids)
        export = weights.pert_array()
        if export is None or weighted_plan(graph, weights) is None:
            return None
        csr = csr_view(graph)
        base = getattr(tree, "_base_state", None)
        if base is not None:
            # Attached shm façade: the decomposition arrays are already
            # mapped - zero-copy, no big-int pass, no list conversions.
            hop0, pert0 = base["hop"], base["pert"]
            tin, tout, preorder = base["tin"], base["tout"], base["preorder"]
            parent_eid = base["parent_eid"]
            max_pert0 = int(pert0.max()) if pert0.size else 0
        else:
            # Per-vertex tree metadata, decomposed once for the sweep.
            pert0_list = tree.dist_perturbations(weights)
            max_pert0 = max(pert0_list, default=0)
            hop0 = np.asarray(tree.depth, dtype=np.int64)
            pert0 = np.asarray(pert0_list, dtype=np.int64)
            tin = np.asarray(tree.tin, dtype=np.int64)
            tout = np.asarray(tree.tout, dtype=np.int64)
            preorder = np.asarray(tree.preorder, dtype=np.int64)
            parent_eid = np.asarray(tree.parent_eid, dtype=np.int64)
        # Re-gate with the largest possible crossing-edge seed: the plan
        # must prove seed + path perturbations never carry into the hop
        # bits, exactly as the per-call seeded path does.
        perts = weighted_plan(
            graph, weights, max_seed_pert=max_pert0 + export[1]
        )
        if perts is None:
            return None
        # edge -> deeper endpoint, vectorized over parent_eid (every
        # reachable non-source vertex names its parent edge exactly once).
        m = csr.num_edges
        child_of_eid = np.full(m, -1, dtype=np.int64)
        verts = np.flatnonzero(parent_eid >= 0)
        child_of_eid[parent_eid[verts]] = verts
        children: List[Vertex] = []
        for eid in edge_list:
            child = int(child_of_eid[eid]) if 0 <= eid < m else -1
            if child < 0:
                child = tree.edge_child(eid)  # raises: not a tree edge
            children.append(child)
        # Chunk by subtree expansion: prefix sums of the preorder-ordered
        # degrees give each failed subtree's half-edge count in O(1).
        deg_pre = (csr.indptr[1:] - csr.indptr[:-1])[preorder]
        cum = np.concatenate([[0], np.cumsum(deg_pre)])
        sizes = [int(cum[tout[c]] - cum[tin[c]]) for c in children]
        return PreparedWeightedSweep(
            self, csr, weights, perts, edge_list, children, sizes,
            hop0, pert0, tin, tout, preorder,
        )

    def _sweep_chunk(
        self,
        csr,
        weights,
        perts: np.ndarray,
        eids: List[EdgeId],
        children: List[Vertex],
        hop0: np.ndarray,
        pert0: np.ndarray,
        tin: np.ndarray,
        tout: np.ndarray,
        preorder: np.ndarray,
        state,
    ) -> Iterator[ReplacementSweepItem]:
        """One stacked chunk of subtree recomputes (layer = failed edge)."""
        n = csr.num_vertices
        B = len(eids)
        children_np = np.asarray(children, dtype=np.int64)
        tin_c = tin[children_np]
        tout_c = tout[children_np]
        sizes = tout_c - tin_c
        subs = np.concatenate(
            [preorder[tin_c[b] : tout_c[b]] for b in range(B)]
        )
        batch_of_sub = np.repeat(np.arange(B, dtype=np.int64), sizes)
        touched = batch_of_sub * n + subs
        allowed_ok = state[5][: B * n]
        allowed_ok[touched] = True

        # Crossing-edge seeds, enumerated vectorized: one neighbor stream
        # over all chunk subtrees replaces the per-edge adjacency() loops
        # (and the per-seed big-int arithmetic) of the reference.
        srcs, nbrs, eids2 = expand_frontier(csr, subs)
        counts = csr.indptr[subs + 1] - csr.indptr[subs]
        batch_he = np.repeat(batch_of_sub, counts)
        banned = np.asarray(eids, dtype=np.int64)
        ta = tin[nbrs]
        keep = eids2 != banned[batch_he]
        keep &= hop0[nbrs] >= 0  # outer endpoint reachable
        keep &= ~((ta >= tin_c[batch_he]) & (ta < tout_c[batch_he]))
        srcs, nbrs, eids2, batch_he = (
            srcs[keep], nbrs[keep], eids2[keep], batch_he[keep],
        )
        sa = SeedArrays(
            hop=hop0[nbrs] + 1,
            pert=pert0[nbrs] + perts[eids2],
            vertex=batch_he * n + srcs,
            parent=nbrs,  # local outer endpoints; unstack_layer maps back
            parent_eid=eids2,
        )
        # The failed edge needs no per-layer ban: its outer endpoint is
        # outside the allowed subtree, so allowed_ok already blocks it.
        views = tuple(buf[: B * n] for buf in state[:5])
        settled, hop, pert, parent, parent_eid = self._weighted_levels(
            csr,
            perts,
            sa,
            allowed_ok=allowed_ok,
            raise_on_tie=True,
            scheme=weights.scheme,
            num_vertices=B * n,
            stacked=True,
            state=views,
            touched=touched,
            layer_width=n,
        )
        shift = weights.shift
        for b in range(B):
            off = b * n
            sub = preorder[tin_c[b] : tout_c[b]]
            idx = sub + off
            ok = settled[idx]
            if not ok.all():
                idx = idx[ok]
                sub = sub[ok]
            sub_l = sub.tolist()
            # The composite (hop << shift) + pert overflows int64 (shift
            # is 63), so distances become Python ints here; everything
            # around them is dict(zip(...)) over bulk tolist() exports.
            dist: Dict[Vertex, Optional[int]] = dict(
                zip(sub_l, (
                    (hh << shift) + pp
                    for hh, pp in zip(hop[idx].tolist(), pert[idx].tolist())
                ))
            )
            par = parent[idx]
            par = np.where(par >= off, par - off, par)
            parent_d: Dict[Vertex, Vertex] = dict(zip(sub_l, par.tolist()))
            parent_eid_d: Dict[Vertex, EdgeId] = dict(
                zip(sub_l, parent_eid[idx].tolist())
            )
            if len(sub_l) != ok.size:
                # Unreached subtree vertices report None, in the same
                # preorder position the per-vertex loop put them.
                full = dict.fromkeys(preorder[tin_c[b] : tout_c[b]].tolist())
                full.update(dist)
                dist = full
            yield (int(eids[b]), int(children[b]), dist, parent_d, parent_eid_d)
        # Restore the shared buffers: every write this chunk made (seeds,
        # settles, relaxation labels, the allowed mask) lives at the
        # subtree positions, so resetting exactly those leaves the state
        # pristine for the next chunk.
        settled[touched] = False
        hop[touched] = -1
        allowed_ok[touched] = False


class PreparedWeightedSweep:
    """One weighted failure sweep's setup, runnable slice by slice.

    Built by :meth:`CSREngine.prepared_weighted_sweep`; immutable after
    construction.  ``items(lo, hi)`` yields the replacement items of the
    request slice ``edge_list[lo:hi]``, bit-identical to running the
    whole sweep and slicing its output (chunk boundaries never affect
    values).  Concurrent ``items`` calls are safe: the shared arrays are
    read-only, and the chunk state buffers are allocated per call.
    """

    __slots__ = (
        "_engine", "csr", "weights", "perts", "edge_list", "children",
        "sizes", "hop0", "pert0", "tin", "tout", "preorder",
    )

    def __init__(
        self, engine, csr, weights, perts, edge_list, children, sizes,
        hop0, pert0, tin, tout, preorder,
    ) -> None:
        self._engine = engine
        self.csr = csr
        self.weights = weights
        self.perts = perts
        self.edge_list = edge_list
        self.children = children
        self.sizes = sizes
        self.hop0 = hop0
        self.pert0 = pert0
        self.tin = tin
        self.tout = tout
        self.preorder = preorder

    def __len__(self) -> int:
        return len(self.edge_list)

    def items(self, lo: int, hi: int) -> Iterator[ReplacementSweepItem]:
        """Replacement items for the request slice ``[lo, hi)``."""
        eids = self.edge_list[lo:hi]
        if not eids:
            return
        children = self.children[lo:hi]
        sizes = self.sizes[lo:hi]
        n = self.csr.num_vertices
        max_batch = max(1, _STACK_STATE // max(1, n))
        chunks = list(_stream_chunks(sizes, _STACK_STREAM, max_batch))
        # One state buffer for the whole slice: subtree layers only ever
        # touch their own vertices, so each chunk resets exactly the
        # positions it wrote instead of paying an O(B * n) allocation.
        size = max(c_hi - c_lo for c_lo, c_hi in chunks) * n
        state = (
            np.zeros(size, dtype=bool),
            np.full(size, -1, dtype=np.int64),
            np.empty(size, dtype=np.int64),
            np.empty(size, dtype=np.int64),
            np.empty(size, dtype=np.int64),
            np.zeros(size, dtype=bool),  # the allowed mask, same regime
        )
        for c_lo, c_hi in chunks:
            yield from self._engine._sweep_chunk(
                self.csr, self.weights, self.perts,
                eids[c_lo:c_hi], children[c_lo:c_hi],
                self.hop0, self.pert0, self.tin, self.tout, self.preorder,
                state,
            )

"""Shared-memory graph plane: zero-copy transport for sharded sweeps.

Before this module existed, every shard of a process-sharded sweep
re-pickled the whole graph (plus, for the weighted sweep, the weight
assignment and the tree) into its worker - an O(m) fixed cost *per
shard* that forced large minimum batch sizes and capped how finely a
sweep could be split.  The plane removes that cost: the parent publishes
the big arrays **once** into a ``multiprocessing.shared_memory`` segment
and ships only a tiny picklable handle; workers attach the segment
zero-copy and rebuild light façades around the mapped arrays.

Three kinds of segment exist, with different lifetimes:

``plane`` (:class:`SharedGraphPlane`)
    The per-*object* segment: the graph's cached CSR view (``indptr`` /
    ``indices`` / ``edge_ids`` / ``edge_u`` / ``edge_v``) and, for
    weighted sweeps, the weight assignment's ``pert_array`` export plus
    the tree's per-vertex arrays (hop/perturbation decomposition of
    ``dist``, ``parent``/``parent_eid``, Euler ``tin``/``tout``/
    ``preorder``).  Planes are cached per graph / per tree (keyed by
    object identity, with ``weakref.finalize`` unlinking the segment
    when the owner is garbage-collected), so repeated sweeps in one
    verify or pcons run publish exactly once.

``request`` (:class:`SweepRequest`)
    The per-*sweep* segment: the full list of requested edge ids plus
    the optional ``allowed_edges`` mask.  With the request published,
    a shard's submit payload shrinks to ``(plane handle, request
    handle, lo, hi)`` - O(1) in graph size.  The sharded engine unlinks
    the request when the sweep generator completes or is abandoned.

``aux`` (:class:`AuxSegment`)
    A generic named-array segment with no façade semantics: the oracle
    server (:mod:`repro.oracle.serve`) republishes a snapshot's
    replacement planes through one so query workers attach them
    zero-copy next to the tree plane.  Published from *already mapped*
    buffers via :func:`publish_aux_arrays` (the plane-from-mapped-buffer
    path: a loaded snapshot's arrays go straight back out without a
    parse step); the owner unlinks it explicitly, like a request.

``base`` (:class:`SweepBaseState`)
    The per-*sweep* base-state segment (unweighted sweeps): the parent's
    precomputed base traversal - distances, parents, parent edge ids,
    and the Euler ``tin``/``tout``/``preorder`` arrays of the base BFS
    tree (see ``FailureSweep.base_state``).  Workers rebuild their sweep
    handle from the mapped arrays in O(1) instead of re-running the
    O(n + m) base BFS per worker, which is what drops a shard's fixed
    cost to O(shard) and lets the sharded engine use its finest batch
    sizes.  Same lifetime as the request segment.

Worker side, :func:`attach_plane` maps the segment (untracked, so the
resource tracker never double-unlinks a parent-owned name) and builds:

* :class:`SharedGraph` - a :class:`~repro.graphs.graph.Graph` façade
  whose ``_csr_cache`` *is* the attached view (array engines run
  zero-copy); Python adjacency lists materialize lazily only if a
  reference-engine path asks for them.
* a :class:`~repro.spt.weights.WeightAssignment` whose big-int
  ``weights`` sequence reconstructs lazily from the mapped perturbation
  array (``weights[e] = BIG + pert[e]``, exact for any exportable
  scheme) and whose ``pert_array()`` memo is pre-seeded with the view.
* a :class:`~repro.spt.spt_tree.ShortestPathTree` façade carrying
  exactly the fields the failure sweeps consume (``dist`` big-ints are
  reassembled from the hop/pert arrays; LCA tables are *not* rebuilt -
  no sweep path touches them).

Attachments are cached per worker (keyed by segment name, small LRU),
so a persistent pool worker attaches once per plane and amortizes the
façade build over every shard it runs.  Per-sweep state is memoized the
same way for *both* sweep kinds: the unweighted worker's sweep handle
(rebuilt from the base segment, or computed once as a fallback) and the
weighted worker's :class:`~repro.engine.csr_engine.PreparedWeightedSweep`
setup are keyed on ``(plane, request, engine)``, so every shard after a
sweep's first pays only its own slice.  Everything in this module
degrades gracefully: :func:`transport_enabled` is False without numpy
or ``multiprocessing.shared_memory`` (or under ``REPRO_SHM=0``), and
publish failures (e.g. an exhausted ``/dev/shm``) return None so the
sharded engine falls back to the historical pickle transport.
"""

from __future__ import annotations

import atexit
import os
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro._types import EdgeId, Vertex
from repro.graphs.graph import Graph

__all__ = [
    "SHM_ENV_VAR",
    "transport_enabled",
    "PlaneHandle",
    "RequestHandle",
    "RequestView",
    "BaseStateHandle",
    "AuxHandle",
    "SharedGraphPlane",
    "SweepRequest",
    "SweepBaseState",
    "AuxSegment",
    "SharedGraph",
    "publish_graph",
    "publish_tree",
    "publish_plane_arrays",
    "publish_aux_arrays",
    "graph_plane",
    "tree_plane",
    "publish_request",
    "publish_base_state",
    "attach_plane",
    "attach_plane_arrays",
    "attach_request",
    "attach_aux_arrays",
    "weights_facade",
    "tree_facade",
    "active_segment_names",
    "release_segments",
]

#: Set to ``0``/``false``/``off`` to disable the shared-memory transport
#: (the sharded engine then uses the pickle path everywhere).
SHM_ENV_VAR = "REPRO_SHM"


def transport_enabled() -> bool:
    """Whether the shared-memory transport can run in this process."""
    if os.environ.get(SHM_ENV_VAR, "").strip().lower() in ("0", "false", "off"):
        return False
    try:
        import multiprocessing.shared_memory  # noqa: F401
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


# ----------------------------------------------------------------------
# segment plumbing (publisher side)
# ----------------------------------------------------------------------
#: Segments this process created and has not yet unlinked: name ->
#: (SharedMemory, kind).  Kind is "plane", "request" or "base"; the
#: lifecycle tests assert on this registry.
_OWNED: Dict[str, Tuple[object, str]] = {}

#: Errors a publish may legitimately hit (shm exhausted, too large, ...);
#: anything else is a bug and propagates.
_PUBLISH_ERRORS = (OSError, ValueError, MemoryError)


def _publish_arrays(arrays, kind: str):
    """Pack int64 arrays into one fresh segment; return ``(seg, fields)``.

    ``fields`` records ``(key, byte_offset, length)`` per array - all the
    attach side needs besides the segment name.
    """
    import numpy as np
    from multiprocessing import shared_memory

    flat = [
        (key, np.ascontiguousarray(np.asarray(arr, dtype=np.int64)))
        for key, arr in arrays
    ]
    total = sum(int(arr.nbytes) for _, arr in flat)
    seg = shared_memory.SharedMemory(create=True, size=max(total, 8))
    fields: List[Tuple[str, int, int]] = []
    offset = 0
    for key, arr in flat:
        if arr.size:
            view = np.ndarray(arr.shape, dtype=np.int64, buffer=seg.buf, offset=offset)
            view[:] = arr
            del view
        fields.append((key, offset, int(arr.size)))
        offset += int(arr.nbytes)
    _OWNED[seg.name] = (seg, kind)
    return seg, tuple(fields)


def _unlink_segment(name: str) -> None:
    """Unlink + close an owned segment (idempotent)."""
    entry = _OWNED.pop(name, None)
    if entry is None:
        return
    seg = entry[0]
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - already removed
        pass
    try:
        seg.close()
    except BufferError:  # pragma: no cover - a view is still alive
        pass  # the mapping closes when the last view is collected


def active_segment_names(kind: Optional[str] = None) -> List[str]:
    """Names of segments this process currently owns (for tests/debug)."""
    return sorted(
        name for name, (_, k) in _OWNED.items() if kind is None or k == kind
    )


def release_segments() -> None:
    """Unlink every owned segment and drop the plane caches."""
    for name in list(_OWNED):
        _unlink_segment(name)
    _GRAPH_PLANES.clear()
    _TREE_PLANES.clear()


atexit.register(release_segments)


def _open_segment(name: str):
    """Attach an existing segment without resource-tracker ownership.

    The parent owns every segment's lifecycle, and the resource tracker
    is one process shared by the whole process tree (fork and spawn
    children inherit its fd).  An attach that *registered* would poison
    that shared state: the attacher's matching unregister (or exit)
    strips the creator's registration, so the creator's own unlink then
    trips a tracker KeyError - and the segment loses its crash
    protection.  Python 3.13 has ``track=False`` for exactly this;
    older versions suppress the registration call instead.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(res_name, rtype):  # pragma: no cover - trivial shim
            if rtype != "shared_memory":
                original(res_name, rtype)

        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


# ----------------------------------------------------------------------
# handles (the only thing a shard payload carries)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlaneHandle:
    """Picklable description of a published plane - O(1) in graph size."""

    name: str
    num_vertices: int
    num_edges: int
    fields: Tuple[Tuple[str, int, int], ...]
    graph_name: str = ""
    #: ``(shift, scheme, seed, max_pert)`` when weights are published.
    weights_meta: Optional[Tuple[int, str, int, int]] = None
    #: Tree root when tree arrays are published.
    tree_source: Optional[int] = None


@dataclass(frozen=True)
class RequestHandle:
    """Picklable description of one sweep's request segment."""

    name: str
    fields: Tuple[Tuple[str, int, int], ...]
    source: int = -1
    has_allowed: bool = False


@dataclass(frozen=True)
class BaseStateHandle:
    """Picklable description of one sweep's base-state segment."""

    name: str
    fields: Tuple[Tuple[str, int, int], ...]


@dataclass(frozen=True)
class AuxHandle:
    """Picklable description of a generic named-array (aux) segment."""

    name: str
    fields: Tuple[Tuple[str, int, int], ...]


class SharedGraphPlane:
    """A published plane segment; the parent-side owner object."""

    def __init__(self, seg, handle: PlaneHandle) -> None:
        self._seg = seg
        self.handle = handle

    @property
    def name(self) -> str:
        return self.handle.name

    def unlink(self) -> None:
        _unlink_segment(self.handle.name)


class SweepRequest:
    """A published per-sweep request segment (eids + allowed mask)."""

    def __init__(self, seg, handle: RequestHandle) -> None:
        self._seg = seg
        self.handle = handle

    @property
    def name(self) -> str:
        return self.handle.name

    def unlink(self) -> None:
        _unlink_segment(self.handle.name)


class SweepBaseState:
    """A published per-sweep base-state segment (the parent's base sweep)."""

    def __init__(self, seg, handle: BaseStateHandle) -> None:
        self._seg = seg
        self.handle = handle

    @property
    def name(self) -> str:
        return self.handle.name

    def unlink(self) -> None:
        _unlink_segment(self.handle.name)


class AuxSegment:
    """A published generic named-array segment (owner side)."""

    def __init__(self, seg, handle: AuxHandle) -> None:
        self._seg = seg
        self.handle = handle

    @property
    def name(self) -> str:
        return self.handle.name

    def unlink(self) -> None:
        _unlink_segment(self.handle.name)


# ----------------------------------------------------------------------
# publishing
# ----------------------------------------------------------------------
def publish_graph(graph: Graph) -> Optional[SharedGraphPlane]:
    """Publish the graph's CSR view; None = transport unavailable."""
    if not transport_enabled():
        return None
    from repro.engine.csr import csr_view

    try:
        csr = csr_view(graph)
        seg, fields = _publish_arrays(
            [
                ("indptr", csr.indptr),
                ("indices", csr.indices),
                ("edge_ids", csr.edge_ids),
                ("edge_u", csr.edge_u),
                ("edge_v", csr.edge_v),
            ],
            "plane",
        )
    except _PUBLISH_ERRORS:
        return None
    handle = PlaneHandle(
        name=seg.name,
        num_vertices=csr.num_vertices,
        num_edges=csr.num_edges,
        fields=fields,
        graph_name=graph.name,
    )
    return SharedGraphPlane(seg, handle)


def publish_tree(graph: Graph, weights, tree) -> Optional[SharedGraphPlane]:
    """Publish CSR + perturbations + tree arrays for the weighted sweep.

    None when the transport is unavailable *or* the weight assignment
    has no fixed-width export (the exact scheme's big-int ``2**eid``
    perturbations) - callers fall back to the pickle transport, exactly
    like the array kernels fall back to the reference Dijkstra.
    """
    if not transport_enabled():
        return None
    export = weights.pert_array()
    if export is None:
        return None
    perts, max_pert = export
    from repro.engine.csr import csr_view

    pert0 = tree.dist_perturbations(weights)
    try:
        csr = csr_view(graph)
    except _PUBLISH_ERRORS:
        return None
    return publish_plane_arrays(
        [
            ("indptr", csr.indptr),
            ("indices", csr.indices),
            ("edge_ids", csr.edge_ids),
            ("edge_u", csr.edge_u),
            ("edge_v", csr.edge_v),
            ("pert", perts),
            ("tree_hop", tree.depth),
            ("tree_pert", pert0),
            ("tree_parent", tree.parent),
            ("tree_parent_eid", tree.parent_eid),
            ("tree_tin", tree.tin),
            ("tree_tout", tree.tout),
            ("tree_preorder", tree.preorder),
        ],
        num_vertices=csr.num_vertices,
        num_edges=csr.num_edges,
        graph_name=graph.name,
        weights_meta=(weights.shift, weights.scheme, weights.seed, int(max_pert)),
        tree_source=tree.source,
    )


def publish_plane_arrays(
    items,
    *,
    num_vertices: int,
    num_edges: int,
    graph_name: str = "",
    weights_meta: Optional[Tuple[int, str, int, int]] = None,
    tree_source: Optional[int] = None,
) -> Optional[SharedGraphPlane]:
    """Publish a plane directly from ``(key, array)`` pairs.

    The plane-from-mapped-buffer path: callers holding already-mapped
    arrays (a loaded oracle snapshot, another plane) republish them
    without rebuilding the live objects a :func:`publish_tree` needs.
    The keys must follow the plane field conventions (``indptr`` ...
    ``tree_preorder``) for :func:`attach_plane` to build façades.  None
    when the transport is unavailable or the publish fails, like every
    other publisher.
    """
    if not transport_enabled():
        return None
    try:
        seg, fields = _publish_arrays(list(items), "plane")
    except _PUBLISH_ERRORS:
        return None
    handle = PlaneHandle(
        name=seg.name,
        num_vertices=int(num_vertices),
        num_edges=int(num_edges),
        fields=fields,
        graph_name=graph_name,
        weights_meta=weights_meta,
        tree_source=None if tree_source is None else int(tree_source),
    )
    return SharedGraphPlane(seg, handle)


def publish_aux_arrays(items) -> Optional[AuxSegment]:
    """Publish a generic named-array segment (kind ``aux``).

    ``items`` is a sequence of ``(key, array)`` pairs; the attach side
    gets the same keys back from :func:`attach_aux_arrays`.  The caller
    owns the lifetime (unlink explicitly, like a request segment).
    """
    if not transport_enabled():
        return None
    try:
        seg, fields = _publish_arrays(list(items), "aux")
    except _PUBLISH_ERRORS:
        return None
    return AuxSegment(seg, AuxHandle(name=seg.name, fields=fields))


def publish_request(
    eids: Sequence[EdgeId],
    allowed_edges: Optional[Set[EdgeId]] = None,
    source: Vertex = -1,
) -> Optional[SweepRequest]:
    """Publish one sweep's request (edge ids + optional allowed mask)."""
    if not transport_enabled():
        return None
    arrays = [("eids", list(eids))]
    if allowed_edges is not None:
        arrays.append(("allowed", sorted(allowed_edges)))
    try:
        seg, fields = _publish_arrays(arrays, "request")
    except _PUBLISH_ERRORS:
        return None
    handle = RequestHandle(
        name=seg.name,
        fields=fields,
        source=int(source),
        has_allowed=allowed_edges is not None,
    )
    return SweepRequest(seg, handle)


def publish_base_state(sweep_handle) -> Optional[SweepBaseState]:
    """Publish an unweighted sweep's precomputed base-state arrays.

    ``sweep_handle`` is the parent's :class:`SweepHandle`; only handles
    exposing ``base_state()`` (the csr :class:`FailureSweep`) can ship -
    anything else (the reference engine's lazy handle) returns None and
    workers compute (and memoize) their own base traversal, exactly the
    pre-base-state behavior.  Lifetime matches the request segment: the
    sharded engine unlinks both when the sweep completes.
    """
    if not transport_enabled():
        return None
    state = getattr(sweep_handle, "base_state", None)
    if state is None:
        return None
    try:
        seg, fields = _publish_arrays(list(state()), "base")
    except _PUBLISH_ERRORS:
        return None
    return SweepBaseState(seg, BaseStateHandle(name=seg.name, fields=fields))


# ----------------------------------------------------------------------
# plane caches (publish once, reuse across sweeps)
# ----------------------------------------------------------------------
#: id(graph) -> plane.  Entries are dropped (and segments unlinked) by a
#: ``weakref.finalize`` on the graph, so a plane lives exactly as long
#: as the graph it mirrors.
_GRAPH_PLANES: Dict[int, SharedGraphPlane] = {}

#: (id(tree), id(weights)) -> plane, same finalizer discipline (keyed on
#: the tree, which holds the graph and weights alive).
_TREE_PLANES: Dict[Tuple[int, int], SharedGraphPlane] = {}


def _drop_graph_plane(key: int) -> None:
    plane = _GRAPH_PLANES.pop(key, None)
    if plane is not None:
        plane.unlink()


def _drop_tree_plane(key: Tuple[int, int]) -> None:
    plane = _TREE_PLANES.pop(key, None)
    if plane is not None:
        plane.unlink()


def graph_plane(graph: Graph) -> Optional[SharedGraphPlane]:
    """The cached plane for ``graph``, published on first use."""
    key = id(graph)
    plane = _GRAPH_PLANES.get(key)
    if plane is not None and plane.name in _OWNED:
        return plane
    plane = publish_graph(graph)
    if plane is not None:
        _GRAPH_PLANES[key] = plane
        weakref.finalize(graph, _drop_graph_plane, key)
    return plane


def tree_plane(graph: Graph, weights, tree) -> Optional[SharedGraphPlane]:
    """The cached weighted plane for ``(graph, weights, tree)``."""
    key = (id(tree), id(weights))
    plane = _TREE_PLANES.get(key)
    if plane is not None and plane.name in _OWNED:
        return plane
    plane = publish_tree(graph, weights, tree)
    if plane is not None:
        _TREE_PLANES[key] = plane
        weakref.finalize(tree, _drop_tree_plane, key)
    return plane


# ----------------------------------------------------------------------
# worker-side façades
# ----------------------------------------------------------------------
class SharedGraph(Graph):
    """Graph façade over an attached CSR view.

    The attached view *is* the ``_csr_cache``, so array engines run
    zero-copy immediately.  Python adjacency lists (and the edge index)
    materialize lazily from the mapped arrays only when a
    reference-engine path iterates them - order is the CSR order, which
    is the original graph's adjacency-list order by construction.
    """

    __slots__ = ()

    def __init__(self, csr, name: str = "") -> None:
        self._n = csr.num_vertices
        # _edge_u/_edge_v slots stay *unset*: __getattr__ materializes
        # them from the view on first touch (array engines never need
        # the Python lists).
        self._adj = None
        self._edge_index = None
        self.name = name
        self._csr_cache = csr

    def __getattr__(self, attr):
        # Only ever reached for unset slots; the edge-endpoint lists
        # materialize lazily from the attached arrays.
        if attr in ("_edge_u", "_edge_v"):
            csr = self._csr_cache
            self._edge_u = csr.edge_u.tolist()
            self._edge_v = csr.edge_v.tolist()
            return getattr(self, attr)
        raise AttributeError(attr)

    @property
    def num_edges(self) -> int:
        csr = self._csr_cache
        # After a pickle round-trip the view is gone but the lists exist.
        return csr.num_edges if csr is not None else len(self._edge_u)

    def _materialize(self) -> None:
        if self._adj is not None:
            return
        csr = self._csr_cache
        indptr = csr.indptr.tolist()
        pairs = list(zip(csr.indices.tolist(), csr.edge_ids.tolist()))
        self._adj = [pairs[indptr[v] : indptr[v + 1]] for v in range(self._n)]
        self._edge_index = {
            (u, v): eid
            for eid, (u, v) in enumerate(zip(self._edge_u, self._edge_v))
        }

    def _adjacency_of(self, v: int):
        if self._adj is None:
            self._materialize()
        return super()._adjacency_of(v)

    def degrees(self):
        if self._adj is None:
            self._materialize()
        return super().degrees()

    def edge_id(self, u, v):
        if self._edge_index is None:
            self._materialize()
        return super().edge_id(u, v)

    def has_edge(self, u, v):
        if self._edge_index is None:
            self._materialize()
        return super().has_edge(u, v)

    def __eq__(self, other):
        if self._edge_index is None:
            self._materialize()
        if isinstance(other, SharedGraph) and other._edge_index is None:
            other._materialize()
        return super().__eq__(other)

    def __hash__(self):  # pragma: no cover - graphs rarely hashed
        if self._edge_index is None:
            self._materialize()
        return super().__hash__()

    def __getstate__(self):
        # A pickled façade must stand alone: materialize the Python
        # containers first (the attached view itself is never shipped).
        self._materialize()
        return super().__getstate__()


def _plain(arr) -> List[int]:
    """A sequence as a plain Python int list (numpy view or list alike)."""
    tolist = getattr(arr, "tolist", None)
    return tolist() if tolist is not None else list(arr)


class _SharedWeights:
    """Lazy big-int weight sequence over a mapped perturbation array.

    ``weights[e] = BIG + pert[e]`` reconstructs the original assignment
    exactly for any exportable scheme; the full list materializes once,
    on the first reference-engine access.  ``owner`` pins the backing
    segment: numpy views do not keep a ``SharedMemory`` alive on their
    own (its ``__del__`` unmaps under surviving views).  ``pert`` may
    also be a plain list (the snapshot loader's no-numpy fallback).
    """

    __slots__ = ("_pert", "_big", "_list", "_owner")

    def __init__(self, pert, big: int, owner: object = None) -> None:
        self._pert = pert
        self._big = big
        self._list: Optional[List[int]] = None
        self._owner = owner

    def _materialize(self) -> List[int]:
        if self._list is None:
            big = self._big
            self._list = [big + p for p in _plain(self._pert)]
        return self._list

    def __getitem__(self, index):
        return self._materialize()[index]

    def __len__(self) -> int:
        return len(self._pert)

    def __iter__(self):
        return iter(self._materialize())

    def __reduce__(self):
        return (list, (self._materialize(),))


def weights_facade(pert, shift: int, scheme: str, seed: int, max_pert: int,
                   owner: object = None):
    """A :class:`~repro.spt.weights.WeightAssignment` over a mapped
    (or listed) perturbation plane, big-int weights rebuilt lazily.

    The memoized ``pert_array`` export is pre-seeded with the mapped
    view when it is one, so array kernels run zero-copy and never see
    the lazy sequence; list-backed planes (no numpy) leave the memo to
    the normal export path.
    """
    from repro.spt.weights import WeightAssignment

    weights = WeightAssignment(
        weights=_SharedWeights(pert, 1 << shift, owner),
        shift=shift,
        scheme=scheme,
        seed=seed,
    )
    # setflags only exists on ndarrays - array('q') planes (the no-numpy
    # loader) must NOT seed the memo, or array kernels would fancy-index
    # a plain sequence.
    if hasattr(pert, "setflags"):
        object.__setattr__(weights, "_pert_cache", (pert, max_pert))
    return weights


def _build_weights(handle: PlaneHandle, arrays, owner):
    shift, scheme, seed, max_pert = handle.weights_meta
    return weights_facade(arrays["pert"], shift, scheme, seed, max_pert, owner)


def tree_facade(graph: Graph, weights, source: int, arrays):
    """A :class:`~repro.spt.spt_tree.ShortestPathTree` façade over
    mapped (or listed) ``tree_*`` planes.

    Carries exactly the fields the failure sweeps and the query oracle
    consume; shared by the worker-side plane attach and the snapshot
    loader so the array decomposition never diverges.
    """
    from repro.spt.spt_tree import ShortestPathTree

    tree = ShortestPathTree.__new__(ShortestPathTree)
    tree.graph = graph
    tree.weights = weights
    tree.source = source
    hop = _plain(arrays["tree_hop"])
    pert = _plain(arrays["tree_pert"])
    shift = weights.shift
    tree.dist = [
        None if h < 0 else (h << shift) + p for h, p in zip(hop, pert)
    ]
    tree.depth = hop
    tree.parent = _plain(arrays["tree_parent"])
    tree.parent_eid = _plain(arrays["tree_parent_eid"])
    tree.tin = _plain(arrays["tree_tin"])
    tree.tout = _plain(arrays["tree_tout"])
    tree.preorder = _plain(arrays["tree_preorder"])
    # children / binary-lifting tables are deliberately not rebuilt: no
    # failure-sweep path touches them (lca() would need a full rebuild).
    # The mapped int64 decomposition, for engines that can consume it
    # directly (``CSREngine.prepared_weighted_sweep``): the attached
    # views instead of the Python lists above, so a worker's sweep setup
    # never pays the O(n) list/big-int round trips again.
    tree._base_state = {
        "hop": arrays["tree_hop"],
        "pert": arrays["tree_pert"],
        "parent_eid": arrays["tree_parent_eid"],
        "tin": arrays["tree_tin"],
        "tout": arrays["tree_tout"],
        "preorder": arrays["tree_preorder"],
    }
    return tree


def _build_tree(handle: PlaneHandle, graph: Graph, weights, arrays):
    return tree_facade(graph, weights, handle.tree_source, arrays)


# ----------------------------------------------------------------------
# worker-side attachment caches
# ----------------------------------------------------------------------
#: Attachments this process holds: segment name -> (seg, payload).
#: Bounded LRU with recency refreshed on every hit; eviction just drops
#: the cache's reference.  That is only safe because every façade pins
#: the segment (``CSRAdjacency.owner`` / ``_SharedWeights._owner``):
#: numpy's base chain does NOT keep a ``SharedMemory`` alive, and its
#: ``__del__`` unmaps the buffer under any surviving views (a
#: use-after-unmap segfault, pinned by ``tests/test_shm.py``).
_ATTACHED: "OrderedDict[str, Tuple[object, object]]" = OrderedDict()
_ATTACH_CAP = 4

#: Memoized base sweeps: (plane, request, engine) -> SweepHandle, so a
#: persistent worker computes each sweep's base BFS once, not per shard.
_SWEEP_STATE: "OrderedDict[Tuple[str, str, str], object]" = OrderedDict()
_SWEEP_CAP = 4


def _remember(cache: OrderedDict, cap: int, key, value) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > cap:
        cache.popitem(last=False)


def _recall(cache: OrderedDict, key):
    """Cache lookup that refreshes LRU recency on a hit."""
    value = cache.get(key)
    if value is not None:
        cache.move_to_end(key)
    return value


def _attach_arrays(name: str, fields):
    import numpy as np

    seg = _open_segment(name)
    arrays = {}
    for key, offset, length in fields:
        arr = np.ndarray((length,), dtype=np.int64, buffer=seg.buf, offset=offset)
        arr.setflags(write=False)
        arrays[key] = arr
    return seg, arrays


def attach_plane(handle: PlaneHandle):
    """Attach a plane, returning ``(graph, weights, tree)`` façades.

    ``weights``/``tree`` are None for graph-only planes.  Cached per
    segment name, so repeated shards of one sweep attach exactly once.
    """
    return attach_plane_arrays(handle)[:3]


def attach_plane_arrays(handle: PlaneHandle):
    """Attach a plane, returning ``(graph, weights, tree, arrays)``.

    Like :func:`attach_plane` plus the raw mapped field dict - consumers
    that index the planes directly (the query oracle's O(path) lookups)
    get them without a second attach.  The façades pin the segment; a
    caller holding only ``arrays`` must keep one of them (or the dict's
    graph) alive.
    """
    cached = _recall(_ATTACHED, handle.name)
    if cached is None:
        from repro.engine.csr import CSRAdjacency

        seg, arrays = _attach_arrays(handle.name, handle.fields)
        csr = CSRAdjacency.from_arrays(
            handle.num_vertices, handle.num_edges, arrays, owner=seg
        )
        graph = SharedGraph(csr, name=handle.graph_name)
        weights = tree = None
        if handle.weights_meta is not None:
            weights = _build_weights(handle, arrays, seg)
        if handle.tree_source is not None:
            tree = _build_tree(handle, graph, weights, arrays)
        cached = (seg, (graph, weights, tree, arrays))
        _remember(_ATTACHED, _ATTACH_CAP, handle.name, cached)
    return cached[1]


def attach_aux_arrays(handle: AuxHandle):
    """Attach an aux segment, returning its named-array dict (cached).

    The dict's ``"owner"`` entry pins the mapping (see the ``_ATTACHED``
    eviction note): hold the dict, not just an array pulled out of it.
    """
    cached = _recall(_ATTACHED, handle.name)
    if cached is None:
        seg, arrays = _attach_arrays(handle.name, handle.fields)
        arrays["owner"] = seg
        cached = (seg, arrays)
        _remember(_ATTACHED, _ATTACH_CAP, handle.name, cached)
    return cached[1]


@dataclass(frozen=True)
class RequestView:
    """An attached request.  ``owner`` pins the segment under ``eids``
    (see the ``_ATTACHED`` eviction note); hold the view, not just the
    array."""

    eids: object
    allowed: Optional[Set[EdgeId]]
    owner: object


def attach_request(handle: RequestHandle) -> RequestView:
    """Attach a request segment (cached per name, like planes)."""
    cached = _recall(_ATTACHED, handle.name)
    if cached is None:
        seg, arrays = _attach_arrays(handle.name, handle.fields)
        allowed = (
            set(arrays["allowed"].tolist()) if handle.has_allowed else None
        )
        cached = (seg, RequestView(arrays["eids"], allowed, seg))
        _remember(_ATTACHED, _ATTACH_CAP, handle.name, cached)
    return cached[1]


# ----------------------------------------------------------------------
# worker shard bodies (submitted by the sharded engine)
# ----------------------------------------------------------------------
def _attach_base_state(base_handle: BaseStateHandle):
    """Attach a base-state segment, returning its array dict (cached)."""
    cached = _recall(_ATTACHED, base_handle.name)
    if cached is None:
        seg, arrays = _attach_arrays(base_handle.name, base_handle.fields)
        # ``owner`` rides in the dict: the rebuilt sweep handle must pin
        # the segment (see the ``_ATTACHED`` eviction note).
        arrays["owner"] = seg
        cached = (seg, arrays)
        _remember(_ATTACHED, _ATTACH_CAP, base_handle.name, cached)
    return cached[1]


def _base_sweep_state(
    plane_handle: PlaneHandle,
    request_handle: RequestHandle,
    base_handle: Optional[BaseStateHandle],
    engine_name: str,
):
    """The memoized base sweep handle for one (plane, request, engine).

    With a base-state segment published (and an engine that can consume
    it), the handle is *rebuilt* from the mapped arrays in O(1) instead
    of re-running the base traversal - the shard fixed cost the
    base-state plane exists to eliminate.  Either way the handle is
    memoized, so at most the sweep's first shard in each worker pays
    anything at all.
    """
    key = (plane_handle.name, request_handle.name, engine_name)
    handle = _recall(_SWEEP_STATE, key)
    if handle is None:
        from repro.engine.registry import get_engine

        graph, _, _ = attach_plane(plane_handle)
        request = attach_request(request_handle)
        engine = get_engine(engine_name)
        rebuild = getattr(engine, "sweep_from_base_state", None)
        if base_handle is not None and rebuild is not None:
            arrays = dict(_attach_base_state(base_handle))
            owner = arrays.pop("owner")
            handle = rebuild(
                graph,
                request_handle.source,
                arrays,
                allowed_edges=request.allowed,
            )
            handle._segment_owner = owner  # pin the mapping (see above)
        else:
            handle = engine.sweep(
                graph, request_handle.source, allowed_edges=request.allowed
            )
        _remember(_SWEEP_STATE, _SWEEP_CAP, key, handle)
    return handle


def _shm_sweep_shard(
    plane_handle: PlaneHandle,
    request_handle: RequestHandle,
    base_handle: Optional[BaseStateHandle],
    lo: int,
    hi: int,
    engine_name: str,
) -> List[Sequence[int]]:
    """Worker body: one ``failure_sweep`` slice over attached segments."""
    request = attach_request(request_handle)
    handle = _base_sweep_state(
        plane_handle, request_handle, base_handle, engine_name
    )
    return [handle.failed(int(eid)) for eid in request.eids[lo:hi]]


def _weighted_sweep_state(
    plane_handle: PlaneHandle, request_handle: RequestHandle, engine_name: str
):
    """The memoized weighted-sweep setup for one (plane, request, engine).

    Engines exposing ``prepared_weighted_sweep`` (csr and its compiled
    subclass) get their whole per-sweep setup - plan gating,
    decomposition arrays (zero-copy off the plane via the tree façade's
    ``_base_state``), the edge->child map and chunk sizes - built once
    per worker and shared by every shard; under ``csr-c`` the mapped
    plane arrays feed the compiled weighted kernel directly.  Engines without the hook (or requests the plan rejects)
    memoize None and run each shard through the engine's own sweep, the
    pre-memoization behavior.
    """
    key = (plane_handle.name, request_handle.name, engine_name, "weighted")
    state = _recall(_SWEEP_STATE, key)
    if state is None:
        from repro.engine.registry import get_engine

        graph, weights, tree = attach_plane(plane_handle)
        request = attach_request(request_handle)
        engine = get_engine(engine_name)
        prepare = getattr(engine, "prepared_weighted_sweep", None)
        prepared = None
        if prepare is not None:
            prepared = prepare(
                graph, weights, tree, request.eids.tolist()
            )
        state = (prepared,)
        _remember(_SWEEP_STATE, _SWEEP_CAP, key, state)
    return state[0]


def _shm_weighted_shard(
    plane_handle: PlaneHandle,
    request_handle: RequestHandle,
    base_handle: Optional[BaseStateHandle],  # unused: weighted state rides the plane
    lo: int,
    hi: int,
    engine_name: str,
):
    """Worker body: one ``weighted_failure_sweep`` slice, attached."""
    prepared = _weighted_sweep_state(plane_handle, request_handle, engine_name)
    if prepared is not None:
        return list(prepared.items(lo, hi))
    from repro.engine.registry import get_engine

    graph, weights, tree = attach_plane(plane_handle)
    request = attach_request(request_handle)
    shard = [int(eid) for eid in request.eids[lo:hi].tolist()]
    return list(
        get_engine(engine_name).weighted_failure_sweep(
            graph, weights, tree, eids=shard
        )
    )

"""Decompositions used by Phase S2: heavy paths and exponential segments."""

from repro.decomposition.heavy_path import (
    HeavyPath,
    TreeDecomposition,
    heavy_path_decomposition,
)
from repro.decomposition.segments import (
    PathSegment,
    decompose_path_edges,
    segment_of_edge,
)

__all__ = [
    "HeavyPath",
    "TreeDecomposition",
    "heavy_path_decomposition",
    "PathSegment",
    "decompose_path_edges",
    "segment_of_edge",
]

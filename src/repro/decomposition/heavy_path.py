"""Heavy-path tree decomposition (Sleator-Tarjan via Baswana-Khanna).

Implements Fact 3.3 / Sub-phase (S2.0) of the paper: the BFS tree ``T0``
is recursively broken into vertex-disjoint root-to-leaf-ish paths
``TD = {psi_1, ..., psi_t}``:

* From the root of the current subtree, repeatedly descend into the child
  with the largest subtree ("heavy child") until a leaf - that is the
  path ``psi`` of the current recursive call.
* Every subtree hanging off ``psi`` has at most half the vertices of the
  current subtree (Fact 3.3(1)) and is connected to ``psi`` by one "glue"
  edge ``e(psi, i)`` (Fact 3.3(2)); recursion continues inside it at
  ``level + 1``.

Consequences used by the construction and asserted in tests (Fact 4.1):
every root path ``pi(s, v)`` contains ``O(log n)`` glue edges and
intersects ``O(log n)`` decomposition paths.

``E+`` (edges on decomposition paths) and ``E-`` (glue edges) partition
the tree edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro._types import EdgeId, Vertex
from repro.errors import GraphError
from repro.spt.spt_tree import ShortestPathTree

__all__ = ["HeavyPath", "TreeDecomposition", "heavy_path_decomposition"]


@dataclass
class HeavyPath:
    """One path ``psi`` of the decomposition.

    ``vertices`` run from the top (``s_psi``, closest to the root) to the
    bottom (``t_psi``).  ``level`` is the recursion depth that produced the
    path (0 = the path through the global root).
    """

    index: int
    level: int
    vertices: List[Vertex]
    #: Edge ids of the path's own tree edges (parent edges of vertices[1:]).
    edge_ids: List[EdgeId] = field(default_factory=list)

    @property
    def top(self) -> Vertex:
        """``s_psi`` - the endpoint closest to the root."""
        return self.vertices[0]

    @property
    def bottom(self) -> Vertex:
        """``t_psi`` - the deep endpoint."""
        return self.vertices[-1]

    def __len__(self) -> int:
        return len(self.vertices)


class TreeDecomposition:
    """The full decomposition ``TD`` plus glue-edge bookkeeping."""

    def __init__(self, tree: ShortestPathTree) -> None:
        self.tree = tree
        self.paths: List[HeavyPath] = []
        #: path index containing each vertex (-1 for unreachable vertices).
        self.path_of_vertex: List[int] = [-1] * tree.graph.num_vertices
        #: glue edges ``E-(TD)``.
        self.glue_edges: Set[EdgeId] = set()
        #: path edges ``E+(TD)``.
        self.path_edges: Set[EdgeId] = set()
        self.num_levels = 0
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        tree = self.tree
        size = {v: tree.subtree_size(v) for v in tree.preorder}
        # Work stack of (subtree_root, level); children enumerated from the
        # SPT's child lists.
        stack: List[Tuple[Vertex, int]] = [(tree.source, 0)]
        while stack:
            root, level = stack.pop()
            self.num_levels = max(self.num_levels, level + 1)
            # Descend along heavy children.
            path_vertices = [root]
            v = root
            while tree.children[v]:
                heavy = max(tree.children[v], key=lambda c: (size[c], -c))
                path_vertices.append(heavy)
                v = heavy
            path = HeavyPath(
                index=len(self.paths), level=level, vertices=path_vertices
            )
            for u in path_vertices[1:]:
                path.edge_ids.append(tree.parent_eid[u])
            self.paths.append(path)
            self.path_edges.update(path.edge_ids)
            on_path = set(path_vertices)
            for u in path_vertices:
                self.path_of_vertex[u] = path.index
                for c in tree.children[u]:
                    if c in on_path:
                        continue
                    # c roots a hanging subtree: its parent edge is glue.
                    self.glue_edges.add(tree.parent_eid[c])
                    stack.append((c, level + 1))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def path_containing(self, v: Vertex) -> HeavyPath:
        """The decomposition path through ``v``."""
        idx = self.path_of_vertex[v]
        if idx < 0:
            raise GraphError(f"vertex {v} unreachable; not on any path")
        return self.paths[idx]

    def paths_intersecting_root_path(self, v: Vertex) -> List[HeavyPath]:
        """All paths ``psi`` with ``psi`` intersecting ``pi(s, v)``.

        Walk up from ``v`` hopping between paths via their tops: at most
        one path per recursion level, hence ``O(log n)`` results
        (Fact 4.1(b)).
        """
        tree = self.tree
        result: List[HeavyPath] = []
        u = v
        while True:
            path = self.path_containing(u)
            result.append(path)
            top = path.top
            if top == tree.source:
                break
            u = tree.parent[top]
        result.reverse()
        return result

    def glue_edges_on_root_path(self, v: Vertex) -> List[EdgeId]:
        """Glue edges on ``pi(s, v)`` (``O(log n)`` many, Fact 4.1(a))."""
        tree = self.tree
        result: List[EdgeId] = []
        u = v
        while u != tree.source:
            eid = tree.parent_eid[u]
            if eid in self.glue_edges:
                result.append(eid)
            u = tree.parent[u]
        result.reverse()
        return result

    def root_path_intersection(
        self, path: HeavyPath, v: Vertex
    ) -> Optional[Tuple[Vertex, Vertex]]:
        """The contiguous intersection ``psi`` with ``pi(s, v)``.

        Returns ``(top, bottom)`` vertices of the intersection (both on
        ``psi`` and on ``pi(s, v)``), or ``None`` when disjoint.  The
        intersection, when nonempty, is ``pi(s_psi, LCA(t_psi, v))``.
        """
        tree = self.tree
        if not tree.is_ancestor(path.top, v):
            return None
        w = tree.lca(path.bottom, v)
        return (path.top, w)


def heavy_path_decomposition(tree: ShortestPathTree) -> TreeDecomposition:
    """Decompose ``T0`` into heavy paths (Fact 3.3)."""
    return TreeDecomposition(tree)

"""Exponential decomposition of a root path ``pi(s, v)`` (Sub-phase S2.2).

The paper decomposes ``pi(s, v)`` into ``k' = floor(log2 |pi(s, v)|)``
subsegments of exponentially decreasing length: segment ``j`` ends at the
vertex ``u_{i_j}`` at distance ``ceil(sum_{l=1..j} |pi|/2^l)`` from ``s``
(Eq. 5).  Deviation (documented in DESIGN.md): the paper's boundaries can
leave the last couple of edges of the path outside every segment; we
extend the final segment to reach ``v`` so the segments tile the whole
path.  The Eq. 5 invariants

``|pi_j| >= floor(|pi| / 2^(j-1) / 2)``  and
``sum_{j' > j} |pi_j'| >= |pi_j| / 2  - O(1)``

still hold and are asserted by the property tests.

Segments are represented by *edge index ranges* along the path: segment
``j`` covers path edges ``start <= idx < stop`` where edge ``idx`` joins
path vertices ``idx`` and ``idx + 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ParameterError

__all__ = ["PathSegment", "decompose_path_edges"]


@dataclass(frozen=True)
class PathSegment:
    """Half-open edge-index range ``[start, stop)`` along a root path."""

    index: int  # 1-based segment number j
    start: int
    stop: int

    @property
    def num_edges(self) -> int:
        return self.stop - self.start

    def contains_edge(self, edge_idx: int) -> bool:
        """Whether path-edge ``edge_idx`` falls in this segment."""
        return self.start <= edge_idx < self.stop


def decompose_path_edges(path_length: int) -> List[PathSegment]:
    """Decompose a path of ``path_length`` edges per Eq. 5.

    Returns segments tiling edge indices ``0..path_length-1``.  A path of
    zero edges yields no segments; a path of one or two edges yields a
    single segment (``k' = floor(log2 L)`` would be 0 or 1).
    """
    length = int(path_length)
    if length < 0:
        raise ParameterError(f"path_length must be >= 0, got {path_length}")
    if length == 0:
        return []
    k_prime = int(math.floor(math.log2(length))) if length > 1 else 1
    k_prime = max(k_prime, 1)
    segments: List[PathSegment] = []
    prev_boundary = 0
    running = 0.0
    for j in range(1, k_prime + 1):
        running += length / (2.0**j)
        boundary = int(math.ceil(running))
        if j == k_prime:
            boundary = length  # extend the last segment to cover the tail
        boundary = min(max(boundary, prev_boundary), length)
        if boundary > prev_boundary:
            segments.append(
                PathSegment(index=len(segments) + 1, start=prev_boundary, stop=boundary)
            )
            prev_boundary = boundary
    if prev_boundary < length:  # pragma: no cover - defensive; j==k' covers it
        segments.append(
            PathSegment(index=len(segments) + 1, start=prev_boundary, stop=length)
        )
    return segments


def segment_of_edge(segments: Sequence[PathSegment], edge_idx: int) -> PathSegment:
    """Locate the segment containing a path-edge index (binary search)."""
    lo, hi = 0, len(segments) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        seg = segments[mid]
        if edge_idx < seg.start:
            hi = mid - 1
        elif edge_idx >= seg.stop:
            lo = mid + 1
        else:
            return seg
    raise ParameterError(f"edge index {edge_idx} outside all segments")

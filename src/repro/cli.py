"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------
``list``
    List experiments (with their one-line spec descriptions) and
    workloads.
``run E1 [E2 ...]`` (or ``run all``)
    Run experiments through the scenario pipeline and print their
    tables.  ``--quick`` shrinks the sweeps; ``--jobs N`` fans sweep
    points out over N worker processes (0 = auto); ``--save`` writes
    ``bench_artifacts/`` and streams per-point JSONL as points finish,
    so an interrupted run resumes from its cache (``--fresh`` discards
    cached points first).
``build``
    Build a structure for a named workload and report its sizes.  With
    ``--save PATH`` it instead builds the single-failure query
    structure (SPT + full replacement sweep) and writes an oracle
    snapshot (see :mod:`repro.oracle`).
``query SNAPSHOT``
    Answer failure-distance queries from a saved snapshot; ``--check``
    recomputes every answer with a fresh engine traversal and exits
    nonzero on any mismatch (the CI smoke gate).
``serve SNAPSHOT``
    Long-lived serving loop: JSONL requests on stdin, JSONL responses
    on stdout; ``--workers N`` fans queries out to zero-copy readers
    attached over shared memory.
``quickstart``
    A tiny end-to-end demo.
``engines``
    List the registered traversal engines (see :mod:`repro.engine`),
    including each engine's thread budget and which shared-memory plane
    segments its transport publishes.
``check``
    Run the repo-invariant analyzer (``tools.check``: engine-boundary,
    optional-dependency, env-registry, shm-lifecycle, pickle-hygiene,
    and ctypes-ABI passes) over the source tree.  Only available from a
    source checkout - the ``tools`` package is not installed.

``run``, ``build``, ``query``, ``serve`` and ``quickstart`` accept
``--engine {python,csr}`` to pin the traversal engine for the whole
invocation; otherwise the ``REPRO_ENGINE`` environment variable /
registry default applies.  The full environment-variable surface is
listed in ``repro --help`` (the epilog below mirrors the README table).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import __version__
from repro.core import build_epsilon_ftbfs, verify_structure
from repro.engine import (
    ENGINE_ENV_VAR,
    available_engines,
    default_engine_name,
    engine_context,
    get_engine,
)
from repro.harness import (
    SPECS,
    PipelineRunner,
    artifacts_dir,
    experiment_ids,
    save_record,
    workload,
    workload_names,
)
from repro.util.timing import format_seconds

__all__ = ["main", "build_parser"]


#: Environment variables honored by the toolkit (``repro --help`` epilog;
#: keep in sync with the README's table).
_ENV_VAR_HELP = """\
environment variables:
  REPRO_ENGINE           default traversal engine (same values as --engine)
  REPRO_SHM              0 disables the shared-memory shard transport
                         (sharded sweeps fall back to pickled payloads;
                         repro serve answers inline instead of fanning
                         out to workers)
  REPRO_SHARD_THRESHOLD  edge count above which verification auto-upgrades
                         to a parallel engine (default 100000 when shared
                         memory or csr-mt is available, else 200000)
  REPRO_SHARD_MIN_BATCH  minimum failures per shard/window (defaults:
                         16 sharded+shm, 64 sharded+pickle, 8 csr-mt)
  REPRO_MAX_WORKERS      worker-process budget for sharded sweeps and
                         --jobs 0 (default: cores - 1)
  REPRO_THREADS          thread budget for the csr-mt engine
                         (default: the REPRO_MAX_WORKERS worker default)
  REPRO_CC               0 disables the compiled csr-c engine; any other
                         value names the C compiler to use (default:
                         $CC, then cc/gcc/clang on PATH)
  REPRO_CC_CACHE         directory for compiled kernels (default:
                         $XDG_CACHE_HOME/repro or ~/.cache/repro)
  REPRO_CC_FLAGS         extra compiler flags appended to the kernel
                         CFLAGS (e.g. "-fsanitize=address,undefined -g");
                         folded into the compile-cache key
  REPRO_IN_WORKER        set to 1 by the harness in sweep worker
                         processes so nested code skips re-sharding;
                         not meant to be set by hand
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Fault Tolerant BFS structures: a reinforcement-backup tradeoff "
            "(Parter & Peleg, SPAA 2015) - reproduction toolkit"
        ),
        epilog=_ENV_VAR_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command")

    def add_engine_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--engine",
            default=None,
            choices=available_engines(),
            help=f"traversal engine (default: ${ENGINE_ENV_VAR} or the registry default)",
        )

    sub.add_parser("list", help="list experiments and workloads")

    run_p = sub.add_parser("run", help="run experiments by id (or 'all')")
    run_p.add_argument("ids", nargs="+", help="experiment ids, e.g. E1 E3, or 'all'")
    run_p.add_argument("--quick", action="store_true", help="small sweeps")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--save",
        action="store_true",
        help="write bench_artifacts/ + stream resumable per-point JSONL",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep points (0 = auto, honors $REPRO_MAX_WORKERS)",
    )
    run_p.add_argument(
        "--fresh",
        action="store_true",
        help="ignore previously cached points (with --save)",
    )
    add_engine_flag(run_p)

    build_p = sub.add_parser("build", help="build one structure and report")
    build_p.add_argument("--workload", default="gnp", choices=workload_names())
    build_p.add_argument("--n", type=int, default=200)
    build_p.add_argument("--epsilon", type=float, default=0.3)
    build_p.add_argument("--seed", type=int, default=0)
    build_p.add_argument("--no-verify", action="store_true")
    build_p.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help=(
            "write a query-oracle snapshot of the workload's SPT + "
            "replacement sweep instead of building the epsilon-FTBFS "
            "(uses the random weight scheme; retries seeds on ties)"
        ),
    )
    add_engine_flag(build_p)

    query_p = sub.add_parser(
        "query", help="answer failure queries from a saved snapshot"
    )
    query_p.add_argument("snapshot", help="snapshot file from 'build --save'")
    query_p.add_argument(
        "--target",
        type=int,
        action="append",
        help="target vertex (repeatable; default: a deterministic sample)",
    )
    query_p.add_argument(
        "--failed",
        default="",
        help="comma-separated failed edge ids (default: none)",
    )
    query_p.add_argument(
        "--sample",
        type=int,
        default=0,
        help="query K sampled vertices instead of --target",
    )
    query_p.add_argument("--seed", type=int, default=0, help="sampling seed")
    query_p.add_argument(
        "--path",
        action="store_true",
        dest="show_path",
        help="print each surviving shortest path",
    )
    query_p.add_argument(
        "--check",
        action="store_true",
        help=(
            "recompute every answer (dist + parent chain) with a fresh "
            "engine traversal; exit 1 on any mismatch"
        ),
    )
    add_engine_flag(query_p)

    serve_p = sub.add_parser(
        "serve", help="serve snapshot queries over stdin/stdout JSONL"
    )
    serve_p.add_argument("snapshot", help="snapshot file from 'build --save'")
    serve_p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="zero-copy reader workers (0 = answer inline in this process)",
    )
    serve_p.add_argument(
        "--start-method",
        default=None,
        choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method for the worker pool",
    )
    add_engine_flag(serve_p)

    quickstart_p = sub.add_parser("quickstart", help="tiny end-to-end demo")
    add_engine_flag(quickstart_p)

    sub.add_parser("engines", help="list registered traversal engines")

    check_p = sub.add_parser(
        "check",
        help="run the repo-invariant analyzer (source checkouts only)",
    )
    check_p.add_argument(
        "check_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m tools.check",
    )
    return parser


def _cmd_list() -> int:
    print("experiments:")
    for eid in experiment_ids():
        print(f"  {eid:<4} {SPECS[eid].description}")
    print("workloads:")
    for name in workload_names():
        print(f"  {name}")
    return 0


def _cmd_engines() -> int:
    default = default_engine_name()
    print("engines:")
    for name in available_engines():
        engine = get_engine(name)
        marker = "  (default)" if name == default else ""
        print(f"  {name:<8} {type(engine).__name__}{marker}")
        print(f"  {'':<8}   weighted_backend: {engine.weighted_backend}")
        print(f"  {'':<8}   replacement: {engine.replacement_backend}")
        print(f"  {'':<8}   detours: {engine.detour_backend}")
        print(f"  {'':<8}   transport: {engine.transport}")
        print(f"  {'':<8}   threads: {engine.threads}")
        print(f"  {'':<8}   segments: {engine.plane_segments}")
        print(f"  {'':<8}   compiler: {engine.compiler}")
    print(f"select with --engine, ${ENGINE_ENV_VAR}, or repro.engine.set_default_engine")
    return 0


def _cmd_run(
    ids: Sequence[str],
    quick: bool,
    seed: int,
    save: bool,
    jobs: int,
    fresh: bool,
    engine: Optional[str],
) -> int:
    requested: List[str] = []
    for eid in ids:
        if eid.lower() == "all":
            requested = experiment_ids()
            break
        requested.append(eid.upper())
    runner = PipelineRunner(
        jobs=jobs,
        cache_dir=artifacts_dir() if save else None,
        engine=engine,
        fresh=fresh,
    )
    status = 0
    for eid in requested:
        record = runner.run(eid, quick=quick, seed=seed)
        print(record.render())
        cached = record.params.get("cached", 0)
        resumed = f", {cached} cached" if cached else ""
        print(
            f"  (elapsed {format_seconds(record.elapsed_seconds)}; "
            f"{record.params.get('points', 0)} points{resumed})\n"
        )
        if save:
            path = save_record(record)
            print(f"  saved -> {path}\n")
    return status


def _build_query_tree(graph, source: int, seed: int):
    """SPT under the random scheme, reseeding past tie-break failures.

    Snapshots need int64-representable weights, so the exact scheme is
    not an option here; the random scheme's ties are loud and rare, and
    a handful of reseeds always clears them.
    """
    from repro.errors import TieBreakError
    from repro.spt.spt_tree import build_spt
    from repro.spt.weights import make_weights

    last: Optional[TieBreakError] = None
    for attempt in range(8):
        try:
            weights = make_weights(graph, "random", seed=seed + attempt)
            return build_spt(graph, weights, source)
        except TieBreakError as exc:
            last = exc
    raise last  # pragma: no cover - 8 consecutive ties never happens


def _parse_eids(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _cmd_build_save(
    name: str, n: int, seed: int, save: str
) -> int:
    import os

    from repro.oracle import save_structure

    graph, source = workload(name, n=n, seed=seed)
    tree = _build_query_tree(graph, source, seed)
    path = save_structure(save, tree)
    size = os.path.getsize(path)
    rows = tree.num_reachable - 1
    print(f"graph: {graph}")
    print(
        f"snapshot -> {path} ({size} bytes, source={source}, "
        f"{rows} replacement rows)"
    )
    return 0


def _cmd_query(
    snapshot: str,
    targets: Optional[List[int]],
    failed: str,
    sample: int,
    seed: int,
    show_path: bool,
    check: bool,
    engine: Optional[str],
) -> int:
    import random

    from repro.errors import ReproError
    from repro.oracle import QueryOracle

    try:
        oracle = QueryOracle.load(snapshot, engine=engine)
        failed_eids = _parse_eids(failed)
        structure = oracle.structure
        n = structure.num_vertices
        print(
            f"snapshot: {snapshot} (n={n}, m={structure.num_edges}, "
            f"source={structure.source}, "
            f"rows={structure.num_replacement_rows})"
        )
        if targets:
            chosen = list(targets)
        else:
            count = sample if sample > 0 else min(10, n)
            chosen = sorted(random.Random(seed).sample(range(n), min(count, n)))
        shift = structure.shift
        dists = oracle.dist_many(chosen, failed_eids)
        for v, d in zip(chosen, dists):
            hops = "unreachable" if d is None else d >> shift
            print(f"  v={v} hops={hops}")
            if show_path and d is not None:
                route = oracle.path(v, failed_eids)
                print("    path: " + " -> ".join(str(x) for x in route))
        if check:
            sp = get_engine(engine).shortest_paths(
                structure.graph,
                structure.weights,
                structure.source,
                banned_edges=set(failed_eids),
            )
            bad = [v for v, d in zip(chosen, dists) if d != sp.dist[v]]
            for v, d in zip(chosen, dists):
                if d is not None and v != structure.source and v not in bad:
                    if oracle.parent_of(v, failed_eids) != (
                        sp.parent[v], sp.parent_eid[v],
                    ):
                        bad.append(v)
            if bad:
                print(f"check: MISMATCH at vertices {sorted(bad)}")
                return 1
            print(f"check: ok ({len(chosen)} answers match a fresh traversal)")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_serve(
    snapshot: str,
    workers: int,
    start_method: Optional[str],
    engine: Optional[str],
) -> int:
    from repro.errors import ReproError
    from repro.oracle import load_structure, serve_structure

    try:
        structure = load_structure(snapshot)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        summary = serve_structure(
            structure,
            sys.stdin,
            sys.stdout,
            workers=workers,
            engine=engine,
            start_method=start_method,
        )
    finally:
        structure.close()
    print(
        f"served {summary['requests']} requests "
        f"({summary['errors']} errors, {summary['workers']} workers)",
        file=sys.stderr,
    )
    return 0


def _cmd_build(name: str, n: int, epsilon: float, seed: int, no_verify: bool) -> int:
    graph, source = workload(name, n=n, seed=seed)
    structure = build_epsilon_ftbfs(graph, source, epsilon)
    print(structure.summary())
    for key, value in structure.stats.as_dict().items():
        print(f"  {key}: {value}")
    if not no_verify:
        report = verify_structure(structure)
        print(f"verified: {report.ok} ({report.checked_failures} failure cases)")
        return 0 if report.ok else 1
    return 0


def _cmd_check(check_args: List[str]) -> int:
    """Run ``tools.check`` from a source checkout.

    The analyzer lives in ``tools/`` next to ``src/``, outside the
    installed package; locate it relative to this file (a checkout) or
    the working directory, and fail with a pointer otherwise.
    """
    import os
    from pathlib import Path

    candidates = [Path(__file__).resolve().parents[2], Path(os.getcwd())]
    repo_root = next(
        (
            root
            for root in candidates
            if (root / "tools" / "check" / "__init__.py").is_file()
        ),
        None,
    )
    if repo_root is None:
        print(
            "error: tools/check not found - 'repro check' runs the "
            "repo-invariant analyzer and needs a source checkout "
            "(run it from the repository root)",
            file=sys.stderr,
        )
        return 2
    if str(repo_root) not in sys.path:
        sys.path.insert(0, str(repo_root))
    from tools.check import main as check_main

    argv = list(check_args)
    if argv[:1] == ["--"]:
        argv = argv[1:]
    if not any(not arg.startswith("-") for arg in argv):
        argv.append(str(repo_root / "src" / "repro"))
    return check_main(argv)


def _cmd_quickstart() -> int:
    from repro.graphs import connected_gnp_graph

    graph = connected_gnp_graph(80, 0.1, seed=42)
    print(f"graph: {graph}")
    for eps in (0.0, 0.25, 0.5, 1.0):
        structure = build_epsilon_ftbfs(graph, 0, eps)
        ok = verify_structure(structure).ok
        print(f"  eps={eps:<5} b={structure.num_backup:<5} "
              f"r={structure.num_reinforced:<5} verified={ok}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    raw = list(argv) if argv is not None else sys.argv[1:]
    if raw[:1] == ["check"]:
        # Forward everything verbatim: argparse's REMAINDER refuses to
        # swallow a leading option (e.g. `repro check --engines full`).
        return _cmd_check(raw[1:])
    parser = build_parser()
    args = parser.parse_args(raw)
    # engine_context saves and restores any pre-existing process default.
    with engine_context(getattr(args, "engine", None)):
        if args.command == "list":
            return _cmd_list()
        if args.command == "engines":
            return _cmd_engines()
        if args.command == "run":
            return _cmd_run(
                args.ids, args.quick, args.seed, args.save,
                args.jobs, args.fresh, args.engine,
            )
        if args.command == "build":
            if args.save:
                return _cmd_build_save(args.workload, args.n, args.seed, args.save)
            return _cmd_build(
                args.workload, args.n, args.epsilon, args.seed, args.no_verify
            )
        if args.command == "query":
            return _cmd_query(
                args.snapshot, args.target, args.failed, args.sample,
                args.seed, args.show_path, args.check, args.engine,
            )
        if args.command == "serve":
            return _cmd_serve(
                args.snapshot, args.workers, args.start_method, args.engine
            )
        if args.command == "quickstart":
            return _cmd_quickstart()
        if args.command == "check":
            return _cmd_check(args.check_args)
        parser.print_help()
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Utility layer: seeded randomness, timing, tables, fitting, validation.

These helpers are deliberately dependency-light; only :mod:`numpy` is used
(for the statistics helpers).  Everything here is deterministic given a
seed, which the experiment harness relies on for reproducibility.
"""

from repro.util.plotting import ascii_bars, ascii_loglog, sparkline
from repro.util.rng import RngFactory, spawn_seeds
from repro.util.stats import (
    SummaryStats,
    fit_loglog,
    geometric_mean,
    summarize,
)
from repro.util.tables import Table, format_float, render_table
from repro.util.timing import Timer, format_seconds
from repro.util.validation import (
    check_epsilon,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)

__all__ = [
    "ascii_bars",
    "ascii_loglog",
    "sparkline",
    "RngFactory",
    "spawn_seeds",
    "SummaryStats",
    "fit_loglog",
    "geometric_mean",
    "summarize",
    "Table",
    "format_float",
    "render_table",
    "Timer",
    "format_seconds",
    "check_epsilon",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_probability",
]

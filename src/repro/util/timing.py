"""Lightweight wall-clock timing utilities used by the harness and stats."""

from __future__ import annotations

import time
from typing import Dict, Optional

__all__ = ["Timer", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Human-readable duration (``830us``, ``1.24s``, ``2m03s``)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rem:02.0f}s"


class Timer:
    """Accumulating named-section timer.

    >>> t = Timer()
    >>> with t.section("pcons"):
    ...     pass
    >>> t.total("pcons") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def section(self, name: str) -> "_Section":
        """Return a context manager accumulating into section ``name``."""
        return _Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds accumulated in section ``name`` (0.0 if unused)."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._totals)

    def report(self) -> str:
        """Render the accumulated sections, slowest first."""
        if not self._totals:
            return "(no timings recorded)"
        lines = []
        for name, total in sorted(self._totals.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name:<30} {format_seconds(total):>10} x{self._counts[name]}")
        return "\n".join(lines)


class _Section:
    def __init__(self, timer: Timer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self._timer.add(self._name, time.perf_counter() - self._start)

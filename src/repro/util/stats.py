"""Statistics helpers: summary statistics and log-log exponent fitting.

The benchmark harness checks *shape* claims of the paper (growth
exponents such as ``n^{3/2}`` or ``n^{1+eps}``) by fitting a straight
line to ``(log n, log size)`` pairs; :func:`fit_loglog` implements the
least-squares fit and reports the exponent, the multiplicative constant
and the coefficient of determination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LogLogFit", "fit_loglog", "SummaryStats", "summarize", "geometric_mean"]


@dataclass(frozen=True)
class LogLogFit:
    """Result of fitting ``y ~ constant * x**exponent``."""

    exponent: float
    constant: float
    r_squared: float
    num_points: int

    def predict(self, x: float) -> float:
        """Evaluate the fitted power law at ``x``."""
        return self.constant * float(x) ** self.exponent

    def __str__(self) -> str:
        return (
            f"y ~ {self.constant:.3g} * x^{self.exponent:.3f} "
            f"(R^2={self.r_squared:.4f}, {self.num_points} pts)"
        )


def fit_loglog(xs: Sequence[float], ys: Sequence[float]) -> LogLogFit:
    """Fit a power law ``y = c * x**a`` by least squares in log-log space.

    Raises ``ValueError`` on fewer than two points or non-positive data,
    since a power-law fit is meaningless there.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points for a power-law fit")
    x_arr = np.asarray(xs, dtype=float)
    y_arr = np.asarray(ys, dtype=float)
    if np.any(x_arr <= 0) or np.any(y_arr <= 0):
        raise ValueError("power-law fit requires strictly positive data")
    lx = np.log(x_arr)
    ly = np.log(y_arr)
    slope, intercept = np.polyfit(lx, ly, 1)
    predicted = slope * lx + intercept
    ss_res = float(np.sum((ly - predicted) ** 2))
    ss_tot = float(np.sum((ly - np.mean(ly)) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LogLogFit(
        exponent=float(slope),
        constant=float(math.exp(intercept)),
        r_squared=r_squared,
        num_points=len(xs),
    )


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3g} std={self.std:.3g} "
            f"min={self.minimum:.3g} med={self.median:.3g} max={self.maximum:.3g}"
        )


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` for a non-empty sample."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(values, dtype=float)
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take the geometric mean of an empty sample")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))

"""Statistics helpers: summary statistics and log-log exponent fitting.

The benchmark harness checks *shape* claims of the paper (growth
exponents such as ``n^{3/2}`` or ``n^{1+eps}``) by fitting a straight
line to ``(log n, log size)`` pairs; :func:`fit_loglog` implements the
least-squares fit and reports the exponent, the multiplicative constant
and the coefficient of determination.

Pure Python on purpose: these run on a handful of points per
experiment, and keeping numpy out of the module keeps the whole library
importable on the no-numpy CI matrix (where the python engine proves
the array-free fallback path).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["LogLogFit", "fit_loglog", "SummaryStats", "summarize", "geometric_mean"]


@dataclass(frozen=True)
class LogLogFit:
    """Result of fitting ``y ~ constant * x**exponent``."""

    exponent: float
    constant: float
    r_squared: float
    num_points: int

    def predict(self, x: float) -> float:
        """Evaluate the fitted power law at ``x``."""
        return self.constant * float(x) ** self.exponent

    def __str__(self) -> str:
        return (
            f"y ~ {self.constant:.3g} * x^{self.exponent:.3f} "
            f"(R^2={self.r_squared:.4f}, {self.num_points} pts)"
        )


def fit_loglog(xs: Sequence[float], ys: Sequence[float]) -> LogLogFit:
    """Fit a power law ``y = c * x**a`` by least squares in log-log space.

    Raises ``ValueError`` on fewer than two points or non-positive data,
    since a power-law fit is meaningless there.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points for a power-law fit")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit requires strictly positive data")
    lx = [math.log(float(x)) for x in xs]
    ly = [math.log(float(y)) for y in ys]
    k = len(lx)
    mean_x = sum(lx) / k
    mean_y = sum(ly) / k
    var_x = sum((x - mean_x) ** 2 for x in lx)
    if var_x == 0:
        raise ValueError("power-law fit requires at least two distinct x values")
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly)) / var_x
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(lx, ly))
    ss_tot = sum((y - mean_y) ** 2 for y in ly)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LogLogFit(
        exponent=float(slope),
        constant=float(math.exp(intercept)),
        r_squared=r_squared,
        num_points=len(xs),
    )


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3g} std={self.std:.3g} "
            f"min={self.minimum:.3g} med={self.median:.3g} max={self.maximum:.3g}"
        )


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` for a non-empty sample."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sample")
    data = [float(v) for v in values]
    k = len(data)
    mean = sum(data) / k
    variance = sum((v - mean) ** 2 for v in data) / k  # population (ddof=0)
    ordered = sorted(data)
    mid = k // 2
    median = ordered[mid] if k % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0
    return SummaryStats(
        count=k,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        median=median,
        maximum=ordered[-1],
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot take the geometric mean of an empty sample")
    if any(v <= 0 for v in data):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))

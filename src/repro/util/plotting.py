"""Terminal plotting: bar charts and log-log scatter sketches.

The examples and reports render small ASCII visuals so the tradeoff
shapes are visible without matplotlib (which this library deliberately
does not depend on).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["ascii_bars", "ascii_loglog", "sparkline"]

_SPARK_LEVELS = " .:-=+*#%@"


def ascii_bars(
    labels: Sequence[object],
    values: Sequence[float],
    *,
    width: int = 40,
    fill: str = "#",
) -> str:
    """Horizontal bar chart; one line per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return "(empty chart)"
    peak = max(values)
    label_width = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar_len = 0 if peak <= 0 else round(width * value / peak)
        bar = fill * max(bar_len, 1 if value > 0 else 0)
        lines.append(f"{str(label):>{label_width}} | {bar} {value:g}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line intensity sketch of a series."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    chars = []
    for v in values:
        t = 0.0 if span == 0 else (v - lo) / span
        chars.append(_SPARK_LEVELS[round(t * (len(_SPARK_LEVELS) - 1))])
    return "".join(chars)


def ascii_loglog(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    rows: int = 12,
    cols: int = 50,
    marker: str = "o",
    reference_exponent: Optional[float] = None,
) -> str:
    """A log-log scatter sketch, optionally with a reference slope line.

    The reference line (marker ``.``) is anchored at the first point, so
    eyeballing whether measured growth beats the reference is immediate.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("log-log plot requires positive data")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    lx = [math.log10(x) for x in xs]
    ly = [math.log10(y) for y in ys]
    ref_points: List[Tuple[float, float]] = []
    if reference_exponent is not None:
        x0, y0 = lx[0], ly[0]
        for i in range(cols):
            t = lx[0] + (max(lx) - lx[0]) * i / max(cols - 1, 1)
            ref_points.append((t, y0 + reference_exponent * (t - x0)))
    all_y = ly + [y for _, y in ref_points]
    x_lo, x_hi = min(lx), max(lx)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * cols for _ in range(rows)]

    def put(x: float, y: float, ch: str) -> None:
        c = round((x - x_lo) / x_span * (cols - 1))
        r = rows - 1 - round((y - y_lo) / y_span * (rows - 1))
        if grid[r][c] == " " or ch == marker:
            grid[r][c] = ch

    for x, y in ref_points:
        put(x, y, ".")
    for x, y in zip(lx, ly):
        put(x, y, marker)
    lines = ["+" + "-" * cols + "+"]
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * cols + "+")
    lines.append(
        f" x: 10^{x_lo:.2f}..10^{x_hi:.2f}   y: 10^{y_lo:.2f}..10^{y_hi:.2f}"
        + (
            f"   ref slope {reference_exponent:g} (dots)"
            if reference_exponent is not None
            else ""
        )
    )
    return "\n".join(lines)

"""Deterministic randomness helpers.

Every stochastic component in the library draws its randomness from an
explicit seed.  :class:`RngFactory` derives independent child seeds for
named subsystems so that, e.g., changing how many random graphs a sweep
generates does not perturb the tie-breaking perturbations used by the
construction — a property the reproducibility tests assert.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, List

__all__ = ["RngFactory", "spawn_seeds", "derive_seed"]

_MASK64 = (1 << 64) - 1


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a stable 64-bit child seed from ``seed`` and a label path.

    The derivation hashes the textual representation of the labels, so it
    is stable across processes and Python versions (unlike ``hash``).
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(seed)).encode("ascii"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest(), "little") & _MASK64


def spawn_seeds(seed: int, count: int, *labels: object) -> List[int]:
    """Return ``count`` independent child seeds derived from ``seed``."""
    return [derive_seed(seed, *labels, i) for i in range(count)]


class RngFactory:
    """Factory of named, independent :class:`random.Random` instances."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def get(self, *labels: object) -> random.Random:
        """Return a ``random.Random`` seeded for the given label path."""
        return random.Random(derive_seed(self.seed, *labels))

    def child(self, *labels: object) -> "RngFactory":
        """Return a factory whose seed is derived from this one."""
        return RngFactory(derive_seed(self.seed, *labels))

    def stream(self, *labels: object) -> Iterator[random.Random]:
        """Yield an infinite stream of independent RNGs for a label path."""
        index = 0
        while True:
            yield self.get(*labels, index)
            index += 1

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngFactory(seed={self.seed})"

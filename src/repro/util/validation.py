"""Parameter validation helpers with consistent error messages."""

from __future__ import annotations

import os

from repro.errors import ParameterError

__all__ = [
    "check_epsilon",
    "check_probability",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "env_int",
]


def env_int(name: str, default: int) -> int:
    """Read an integer environment override, with a clear domain error.

    Empty/unset falls back to ``default``; anything non-integer raises
    :class:`ParameterError` naming the variable instead of a bare
    ``ValueError`` from deep inside a hot path.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ParameterError(f"${name} must be an integer, got {raw!r}") from None


def check_epsilon(epsilon: float, *, name: str = "epsilon") -> float:
    """Validate the tradeoff parameter ``epsilon`` in ``[0, 1]``."""
    eps = float(epsilon)
    if not 0.0 <= eps <= 1.0:
        raise ParameterError(f"{name} must lie in [0, 1], got {epsilon!r}")
    return eps


def check_probability(p: float, *, name: str = "p") -> float:
    """Validate a probability in ``[0, 1]``."""
    value = float(p)
    if not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must lie in [0, 1], got {p!r}")
    return value


def check_positive(value: float, *, name: str = "value") -> float:
    """Validate a strictly positive number."""
    v = float(value)
    if not v > 0:
        raise ParameterError(f"{name} must be positive, got {value!r}")
    return v


def check_nonnegative(value: float, *, name: str = "value") -> float:
    """Validate a non-negative number."""
    v = float(value)
    if v < 0:
        raise ParameterError(f"{name} must be non-negative, got {value!r}")
    return v


def check_in_range(
    value: int, low: int, high: int, *, name: str = "value"
) -> int:
    """Validate an integer in the inclusive range ``[low, high]``."""
    v = int(value)
    if not low <= v <= high:
        raise ParameterError(f"{name} must lie in [{low}, {high}], got {value!r}")
    return v

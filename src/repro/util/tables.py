"""ASCII table rendering for experiment reports.

The benchmark harness prints paper-style tables to stdout and writes the
same content into ``bench_artifacts/``; this module owns the formatting so
all experiments share a consistent look.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

__all__ = ["Table", "render_table", "format_float"]


def format_float(value: object, digits: int = 4) -> str:
    """Format a cell value compactly (floats get ``digits`` significant digits)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{digits}g}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned table builder."""

    title: str
    columns: Sequence[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row; values are formatted via :func:`format_float`."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append([format_float(cell) for cell in cells])

    def add_note(self, note: str) -> None:
        """Attach a footnote rendered under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Render the table to a string."""
        return render_table(self.title, self.columns, self.rows, self.notes)

    def __str__(self) -> str:
        return self.render()


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[str]],
    notes: Sequence[str] = (),
) -> str:
    """Render rows of pre-formatted strings as an aligned ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt_row(list(columns)))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt_row(row))
    for note in notes:
        lines.append(f"  * {note}")
    return "\n".join(lines)
